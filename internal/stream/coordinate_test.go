package stream

import (
	"math"
	"testing"
)

// testCoord is an in-process model of the cluster router's accuracy
// coordinator: it holds the cluster-wide cumulative evidence and
// replays refreshLocked's fold — deltas merged in member order, decay,
// clamp, smoothed accuracy — against member engines through the
// public coordination API. internal/cluster implements the same
// protocol over HTTP; this proves the math at the engine boundary.
type testCoord struct {
	opts  Options
	ix    map[string]int
	names []string
	agree []float64
	total []float64
}

func newTestCoord(opts Options) *testCoord {
	return &testCoord{opts: opts, ix: map[string]int{}}
}

func (c *testCoord) intern(name string) int {
	if i, ok := c.ix[name]; ok {
		return i
	}
	i := len(c.names)
	c.ix[name] = i
	c.names = append(c.names, name)
	c.agree = append(c.agree, 0)
	c.total = append(c.total, 0)
	return i
}

// barrier is one cluster epoch: drain every member in member order,
// fold, recompute accuracies, push the σ-table back.
func (c *testCoord) barrier(t *testing.T, members []*Engine) {
	t.Helper()
	delta := make([]float64, len(c.names), len(c.names)+8)
	dtot := make([]float64, len(c.names), len(c.names)+8)
	obs := make([]int64, len(c.names), len(c.names)+8)
	for _, m := range members { // member order = shard order
		stats, err := m.DrainDeltas()
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stats {
			i := c.intern(st.Source)
			for len(delta) < len(c.names) {
				delta = append(delta, 0)
				dtot = append(dtot, 0)
				obs = append(obs, 0)
			}
			delta[i] += st.Agree
			dtot[i] += st.Total
			obs[i] += st.Observations
		}
	}
	accs := make([]SourceAccuracy, len(c.names))
	for s := range c.names {
		if c.opts.Decay < 1 && obs[s] > 0 {
			d := math.Pow(c.opts.Decay, float64(obs[s]))
			c.agree[s] *= d
			c.total[s] *= d
		}
		c.agree[s] += delta[s]
		c.total[s] += dtot[s]
		if c.agree[s] < 0 {
			c.agree[s] = 0
		}
		accs[s] = SourceAccuracy{Source: c.names[s], Accuracy: c.opts.EstimateAccuracy(c.agree[s], c.total[s])}
	}
	for _, m := range members {
		if err := m.ApplyAccuracies(accs, false); err != nil {
			t.Fatal(err)
		}
	}
}

// refine is the distributed exact re-sweep: per sweep, pool every
// member's refine mass in member order, re-anchor the cumulative state
// on it, and push the new σ-table with an eager rescore.
func (c *testCoord) refine(t *testing.T, members []*Engine, sweeps int) {
	t.Helper()
	for sweep := 0; sweep < sweeps; sweep++ {
		mergedA := make([]float64, len(c.names), len(c.names)+8)
		mergedT := make([]float64, len(c.names), len(c.names)+8)
		n := 0
		for _, m := range members {
			stats, err := m.RefineMass()
			if err != nil {
				t.Fatal(err)
			}
			n += len(stats)
			for _, st := range stats {
				i := c.intern(st.Source)
				for len(mergedA) < len(c.names) {
					mergedA = append(mergedA, 0)
					mergedT = append(mergedT, 0)
				}
				mergedA[i] += st.Agree
				mergedT[i] += st.Total
			}
		}
		if n == 0 {
			return
		}
		c.agree, c.total = mergedA, mergedT
		accs := make([]SourceAccuracy, len(c.names))
		for s := range c.names {
			accs[s] = SourceAccuracy{Source: c.names[s], Accuracy: c.opts.EstimateAccuracy(c.agree[s], c.total[s])}
		}
		for _, m := range members {
			if err := m.ApplyAccuracies(accs, true); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// newMember builds one cluster-member engine: a single shard with
// externally driven epochs. maxObjects is the per-member live-object
// budget (what one shard of the reference engine gets).
func newMember(t *testing.T, opts Options, maxObjects int) *Engine {
	t.Helper()
	eo := DefaultEngineOptions()
	eo.Options = opts
	eo.Shards = 1
	eo.EpochLength = ExternalEpochLength
	eo.MaxObjects = maxObjects
	e, err := NewEngine(eo)
	if err != nil {
		t.Fatal(err)
	}
	if !e.ExternalEpochs() {
		t.Fatal("member engine does not report external epochs")
	}
	return e
}

// clusterEquivalence feeds the same chunked claim stream through a
// reference N-shard engine and through N coordinated single-shard
// members, and requires bit-identical estimates (in output order) and
// source accuracies at every comparison point.
func clusterEquivalence(t *testing.T, opts Options, maxObjects int) {
	const nodes, batch, epochLen = 3, 32, 64
	_, triples := streamInstance(t, 11)

	refOpts := DefaultEngineOptions()
	refOpts.Options = opts
	refOpts.Shards = nodes
	refOpts.EpochLength = epochLen
	refOpts.MaxObjects = maxObjects * nodes
	ref, err := NewEngine(refOpts)
	if err != nil {
		t.Fatal(err)
	}

	members := make([]*Engine, nodes)
	for i := range members {
		members[i] = newMember(t, opts, maxObjects)
	}
	coord := newTestCoord(opts)

	since := 0
	for lo := 0; lo < len(triples); lo += batch {
		hi := lo + batch
		if hi > len(triples) {
			hi = len(triples)
		}
		chunk := make([]Triple, 0, hi-lo)
		for _, tr := range triples[lo:hi] {
			chunk = append(chunk, Triple{Source: tr[0], Object: tr[1], Value: tr[2]})
		}
		ref.ObserveBatch(chunk)

		per := make([][]Triple, nodes)
		for _, tr := range chunk {
			n := ShardIndex(tr.Object, nodes)
			per[n] = append(per[n], tr)
		}
		for i, m := range members {
			if len(per[i]) > 0 {
				m.ObserveBatch(per[i])
			}
		}
		since += len(chunk)
		if since >= epochLen {
			coord.barrier(t, members)
			since = 0
		}
	}

	compareClusterToReference(t, "after ingest", ref, members)
	ref.Refine(2)
	coord.refine(t, members, 2)
	compareClusterToReference(t, "after refine", ref, members)
}

// compareClusterToReference checks the two determinism claims the
// router's scatter-gather relies on: member estimates concatenated in
// member order are exactly the reference engine's shard-major estimate
// sequence, and every member's view of a source accuracy is the
// reference accuracy bit for bit.
func compareClusterToReference(t *testing.T, stage string, ref *Engine, members []*Engine) {
	t.Helper()
	var want []Estimate
	for est := range ref.EstimatesSeq() {
		want = append(want, est)
	}
	var got []Estimate
	for _, m := range members {
		for est := range m.EstimatesSeq() {
			got = append(got, est)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: cluster has %d estimates, reference %d", stage, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: estimate %d diverged: cluster %+v, reference %+v", stage, i, got[i], want[i])
		}
	}
	refSrcs := ref.Sources()
	seen := map[string]bool{}
	for mi, m := range members {
		for _, s := range m.Sources() {
			seen[s] = true
			if g, w := m.SourceAccuracy(s), ref.SourceAccuracy(s); g != w {
				t.Fatalf("%s: member %d source %s accuracy %v != reference %v", stage, mi, s, g, w)
			}
		}
	}
	if len(seen) != len(refSrcs) {
		t.Fatalf("%s: cluster union has %d sources, reference %d", stage, len(seen), len(refSrcs))
	}
	for _, s := range refSrcs {
		if !seen[s] {
			t.Fatalf("%s: reference source %s missing from cluster union", stage, s)
		}
	}
}

// TestClusterCoordinationMatchesSingleEngine is the scale-out
// equivalence theorem at the engine boundary: three single-shard
// members behind the coordination protocol are bit-identical to one
// three-shard engine fed the same chunk stream — through epoch
// barriers and through the distributed exact re-sweep.
func TestClusterCoordinationMatchesSingleEngine(t *testing.T) {
	clusterEquivalence(t, DefaultOptions(), 0)
}

// TestClusterCoordinationWithDecayAndEviction re-proves equivalence on
// the harder configuration: evidence decay plus a live-object cap, so
// the drained deltas include eviction settlements and the barrier fold
// exercises the decay-and-clamp path.
func TestClusterCoordinationWithDecayAndEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.Decay = 0.995
	clusterEquivalence(t, opts, 120)
}

// TestDrainDeltasDrainsOnce: a second drain with no intervening ingest
// contributes nothing, so a coordinator retrying a barrier cannot
// double-count evidence it already folded.
func TestDrainDeltasDrainsOnce(t *testing.T) {
	e := newMember(t, DefaultOptions(), 0)
	e.ObserveBatch([]Triple{
		{Source: "s1", Object: "o1", Value: "a"},
		{Source: "s2", Object: "o1", Value: "a"},
		{Source: "s1", Object: "o2", Value: "b"},
	})
	first, err := e.DrainDeltas()
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, st := range first {
		mass += st.Agree + st.Total
	}
	if mass == 0 {
		t.Fatal("first drain carried no evidence")
	}
	second, err := e.DrainDeltas()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range second {
		if st.Agree != 0 || st.Total != 0 || st.Observations != 0 {
			t.Fatalf("second drain not empty: %+v", st)
		}
	}
}

// TestApplyAccuraciesInternsAndValidates: pushed tables may name
// sources this member has never seen a claim from — they must be
// interned with the pushed σ so a later claim scores correctly — and
// out-of-range accuracies must be rejected atomically.
func TestApplyAccuraciesInternsAndValidates(t *testing.T) {
	e := newMember(t, DefaultOptions(), 0)
	if err := e.ApplyAccuracies([]SourceAccuracy{{Source: "remote", Accuracy: 0.9}}, false); err != nil {
		t.Fatal(err)
	}
	if got := e.SourceAccuracy("remote"); got != 0.9 {
		t.Fatalf("interned source accuracy = %v, want 0.9", got)
	}
	for _, bad := range []SourceAccuracy{
		{Source: "x", Accuracy: 0},
		{Source: "x", Accuracy: 1},
		{Source: "x", Accuracy: math.NaN()},
		{Source: "", Accuracy: 0.5},
	} {
		if err := e.ApplyAccuracies([]SourceAccuracy{bad}, false); err == nil {
			t.Fatalf("accuracy %+v accepted", bad)
		}
	}
}

// TestCoordinationRejectsOnlineLearner: the σ-table of an online
// engine comes from feature weights a remote coordinator cannot
// reproduce, so the whole coordination API must refuse.
func TestCoordinationRejectsOnlineLearner(t *testing.T) {
	eo := DefaultEngineOptions()
	eo.Shards = 1
	eo.OnlineLearn = true
	eo.Features = map[string][]string{"s1": {"f=a"}}
	e, err := NewEngine(eo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DrainDeltas(); err == nil {
		t.Fatal("DrainDeltas accepted an online engine")
	}
	if _, err := e.RefineMass(); err == nil {
		t.Fatal("RefineMass accepted an online engine")
	}
	if err := e.ApplyAccuracies(nil, false); err == nil {
		t.Fatal("ApplyAccuracies accepted an online engine")
	}
}
