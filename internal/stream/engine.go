// The sharded streaming engine: the serving-grade sibling of the
// sequential Fuser, built in the compiled-layout style of
// internal/core.
//
// Objects are hash-partitioned across N shards. Each shard owns dense
// state for its objects — claims as (source id, value id) pairs, the
// object's value domain in first-seen order, a log-space score
// accumulator per domain value, and the cached posterior — so Observe
// is an O(domain) delta update on reused slices, not the per-call map
// rebuild the Fuser does.
//
// The cross-shard coupling (source reliability) follows a
// frozen-accuracy epoch contract, the streaming analog of the σ-cache
// contract in internal/core: within an epoch every shard scores
// against the same frozen σ-table, and per-source agreement mass
// accumulates in shard-local delta vectors. Every EpochLength
// observations the engine drains the deltas in shard order (a
// deterministic ordered reduction), folds them into the global
// source state, recomputes accuracies and the σ-table, and bumps the
// epoch; shards lazily rescore an object with the fresh σ the first
// time they touch it in the new epoch. Because shards only
// communicate through the frozen table and the ordered drain, results
// are bit-identical for any Workers count (given fixed Shards and the
// same Observe/ObserveBatch call sequence).
//
// Refine is the periodic exact re-sweep: it recomputes accuracies
// from posteriors and posteriors from accuracies over all live
// objects (plus the retained mass of evicted ones), the same fixed
// point the sequential Fuser's Refine converges to.
package stream

import (
	"errors"
	"iter"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
	"slimfast/internal/online"
	"slimfast/internal/parallel"
)

// EngineOptions tunes the sharded streaming engine. The embedded
// Options carry the same estimator settings as the sequential Fuser,
// with one semantic difference: Decay applies at epoch granularity
// (the refresh discounts a source's settled mass by Decay^k for its k
// observations that epoch), and evidence that is merely re-asserted
// decays rather than being refreshed per observation as in the Fuser.
// Both engines agree again after Refine, which — like the Fuser's —
// rebuilds mass from the undecayed claim set.
type EngineOptions struct {
	Options

	// Shards is the number of object partitions; <= 0 selects
	// runtime.GOMAXPROCS(0). Results are deterministic for a fixed
	// shard count; changing it reorders float accumulation (and so the
	// low bits), not the semantics.
	Shards int

	// Workers bounds the goroutines used by ObserveBatch, Refine and
	// Estimates; <= 0 selects runtime.GOMAXPROCS(0). Any value yields
	// bit-identical results for a fixed Shards.
	Workers int

	// EpochLength is the number of observations between σ-table
	// refreshes; <= 0 selects DefaultEpochLength. Shorter epochs track
	// source drift faster at the cost of more frequent drains.
	EpochLength int

	// Features assigns domain feature labels to source names (the
	// paper's f_sk indicators: "BounceRate=Low", "feed=alpha", ...).
	// A non-nil map enables online discriminative learning; sources
	// absent from the map participate with no features (intercept
	// only). The map is read at source-intern and refresh time only —
	// callers must not mutate it after NewEngine.
	Features map[string][]string

	// OnlineLearn enables the discriminative reliability learner even
	// without features (windowed agreement + intercept-only
	// regression, which already adapts to drift). Implied by a
	// non-empty Features map.
	OnlineLearn bool

	// Learn tunes the online learner; the zero value selects
	// online.DefaultConfig() with InitAccuracy inherited from Options.
	Learn online.Config

	// MaxObjects bounds live per-object state: when positive, each
	// shard keeps at most ceil(MaxObjects/Shards) objects and evicts
	// the least recently observed beyond that. Evicted objects keep
	// contributing their last posterior mass to source accuracies
	// (evicted-mass accounting); their per-object state is freed and
	// Value reports them as unknown. Eviction forgets claim identity:
	// an evicted object that is observed again enters as a fresh
	// object, so its sources' earlier (retained) mass and the new
	// claims both count — under heavy evict/re-observe churn a
	// source's evidence mass reflects observation traffic rather than
	// the deduplicated (source, object) claim set an unbounded engine
	// (or the Fuser) would keep. That is the memory/fidelity trade;
	// size MaxObjects above the working set where exactness matters.
	MaxObjects int

	// DedupWindow bounds the ingest idempotency window: how many
	// recent batch sequence keys (MarkSeq) the engine remembers — and
	// checkpoints, so a client retry straddling a restart still
	// collapses to exactly-once. <= 0 selects DefaultDedupWindow.
	DedupWindow int
}

// DefaultEpochLength is the σ-refresh interval used when
// EngineOptions.EpochLength is unset.
const DefaultEpochLength = 1024

// DefaultDedupWindow is the sequence-key window used when
// EngineOptions.DedupWindow is unset: large enough that a retry storm
// across a fleet of replaying clients stays deduplicated, small
// enough that the window is noise in the checkpoint.
const DefaultDedupWindow = 4096

// DefaultEngineOptions returns production defaults: Fuser estimator
// settings, one shard per core, unbounded memory.
func DefaultEngineOptions() EngineOptions {
	return EngineOptions{Options: DefaultOptions()}
}

// Validate reports the first invalid option.
func (o EngineOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.MaxObjects < 0 {
		return errors.New("stream: MaxObjects must be non-negative")
	}
	if o.onlineEnabled() {
		if err := o.learnConfig().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// onlineEnabled reports whether the options select the discriminative
// learner path.
func (o EngineOptions) onlineEnabled() bool {
	return o.OnlineLearn || len(o.Features) > 0
}

// learnConfig resolves the learner configuration: the zero value means
// defaults, with the learner's prior anchored on the engine's
// InitAccuracy.
func (o EngineOptions) learnConfig() online.Config {
	cfg := o.Learn
	if cfg == (online.Config{}) {
		cfg = online.DefaultConfig()
		cfg.InitAccuracy = o.InitAccuracy
	}
	return cfg
}

// Triple is one streamed claim: Source says Object has Value.
type Triple struct {
	Source, Object, Value string
}

// claim is one (source, value) assertion inside an object. settled is
// the posterior mass last folded into the shard's agreement deltas for
// this claim; the next drain adds post[value] - settled.
type claim struct {
	src     int32
	val     int32
	settled float64
}

// object is the dense per-object state a shard owns. Domain entries
// are never removed (slots stay for value ids seen once), but only
// entries with a live claim (refs > 0) participate in the posterior —
// matching the Fuser, whose domain is always the currently claimed
// value set.
type object struct {
	name    string
	epoch   int64     // σ-table epoch the scores were computed under
	changed int64     // epoch the MAP value last changed (0 until first claim)
	claims  []claim   // one per claiming source
	domain  []int32   // global value ids, first-seen order
	refs    []int32   // live claims per domain entry
	scores  []float64 // log-odds accumulator per domain entry
	post    []float64 // cached posterior per domain entry
	mapIx   int32     // cached domain index of the MAP value, -1 = none
	dirty   bool      // true when post has drifted from settled
	live    bool      // false for freelist slots
	// Intrusive LRU links (shard-local object indices, -1 = none).
	prev, next int
}

// refreshPosterior recomputes the cached posterior in place: a stable
// softmax over the claimed (refs > 0) domain entries, zero elsewhere.
func (o *object) refreshPosterior() {
	if cap(o.post) < len(o.scores) {
		o.post = make([]float64, len(o.scores))
	}
	o.post = o.post[:len(o.scores)]
	m := math.Inf(-1)
	for i, r := range o.refs {
		if r > 0 && o.scores[i] > m {
			m = o.scores[i]
		}
	}
	var sum float64
	for i, r := range o.refs {
		if r > 0 {
			sum += math.Exp(o.scores[i] - m)
		}
	}
	lse := m + math.Log(sum)
	for i, r := range o.refs {
		if r > 0 {
			o.post[i] = math.Exp(o.scores[i] - lse)
		} else {
			o.post[i] = 0
		}
	}
}

// shard owns a hash partition of the objects plus the shard-local
// accumulators that keep Observe free of cross-shard synchronization.
type shard struct {
	mu      sync.RWMutex
	index   map[string]int // object name -> objs slot
	objs    []object
	free    []int // reusable objs slots (from eviction)
	dirtyIx []int // slots to settle at the next drain
	lruHead int
	lruTail int
	nLive   int

	// Per-source accumulators since the last drain, indexed by global
	// source id (grown on demand).
	deltaAgree []float64
	deltaTotal []float64
	obsCount   []int64 // observations per source (drives decay)

	// Retained mass of evicted objects, indexed by source id. Never
	// reset: Refine rebuilds live mass from scratch on top of this.
	evictedAgree []float64
	evictedTotal []float64

	evictedObjects int64
	evictedClaims  int64
	evictedMass    float64
}

// sourceTable is the engine-global source state. ids/names intern
// source strings; agree/total are the settled (drained) evidence
// masses; acc/sigma are the frozen per-epoch estimates every shard
// scores against.
type sourceTable struct {
	mu    sync.RWMutex
	ids   map[string]int
	names []string
	agree []float64
	total []float64
	acc   []float64
	sigma []float64
	epoch int64
}

// valueTable interns value strings to global dense ids.
type valueTable struct {
	mu    sync.RWMutex
	ids   map[string]int
	names []string
}

// Engine is a sharded, concurrent, incremental streaming fusion
// engine. Observe and ObserveBatch may run concurrently with the read
// API (Value, Estimates, SourceAccuracy, Stats); determinism across
// worker counts is guaranteed for a single ingesting caller.
type Engine struct {
	opts      EngineOptions
	nShards   int
	epochLen  int64
	shardCap  int // per-shard live-object cap, 0 = unbounded
	initSigma float64

	shards []shard
	src    sourceTable
	vals   valueTable

	refreshMu sync.Mutex // serializes epoch refreshes and Refine
	nObs      atomic.Int64
	sinceEp   atomic.Int64

	// learner is the online discriminative-reliability model (nil
	// unless the options enable it). All mutation happens under
	// refreshMu; learnMu additionally guards it so the read API can
	// consult predictions while a refresh retrains. features is the
	// source-name → labels table the learner registers from.
	learner  *online.Learner
	learnMu  sync.RWMutex
	features map[string][]string

	// Ingest idempotency window: a bounded ring of recent batch
	// sequence keys plus its membership set, guarded by seqMu. The
	// window rides in the checkpoint (v3) so retries that straddle a
	// restart still deduplicate.
	seqMu   sync.Mutex
	seqKeys []string
	seqHead int // ring start when full
	seqSet  map[string]struct{}
	seqCap  int

	// Drain scratch, reused across refreshes (guarded by refreshMu).
	mergeAgree []float64
	mergeTotal []float64
	mergeObs   []int64
	accScratch []float64

	// met is the optional instrumentation seam (SetMetrics); the zero
	// value is a no-op and the hot-path increments are atomic adds.
	met Metrics
}

// NewEngine returns an empty sharded engine.
func NewEngine(opts EngineOptions) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := parallel.Resolve(opts.Shards)
	e := &Engine{
		opts:     opts,
		nShards:  n,
		epochLen: int64(opts.EpochLength),
		shards:   make([]shard, n),
	}
	if e.epochLen <= 0 {
		e.epochLen = DefaultEpochLength
	}
	e.seqCap = opts.DedupWindow
	if e.seqCap <= 0 {
		e.seqCap = DefaultDedupWindow
	}
	e.seqSet = make(map[string]struct{})
	if opts.MaxObjects > 0 {
		e.shardCap = (opts.MaxObjects + n - 1) / n
	}
	if opts.onlineEnabled() {
		learner, err := online.New(opts.learnConfig())
		if err != nil {
			return nil, err
		}
		e.learner = learner
		e.features = opts.Features
	}
	e.initSigma = mathx.Logit(smoothedAccuracy(opts.Options, 0, 0))
	for i := range e.shards {
		sh := &e.shards[i]
		sh.index = map[string]int{}
		sh.lruHead, sh.lruTail = -1, -1
	}
	e.src.ids = map[string]int{}
	e.vals.ids = map[string]int{}
	return e, nil
}

// fnvHash is FNV-1a over the string bytes, inlined so the Observe hot
// path does not allocate a hasher.
func fnvHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// shardOf routes an object name to its shard.
func (e *Engine) shardOf(object string) *shard {
	return &e.shards[ShardIndex(object, e.nShards)]
}

// lookupSource interns the source and returns its id, its frozen σ,
// and the current epoch in one lock acquisition.
func (e *Engine) lookupSource(name string) (sid int, sigma float64, epoch int64) {
	e.src.mu.RLock()
	if id, ok := e.src.ids[name]; ok {
		sigma, epoch = e.src.sigma[id], e.src.epoch
		e.src.mu.RUnlock()
		return id, sigma, epoch
	}
	e.src.mu.RUnlock()
	e.src.mu.Lock()
	id, ok := e.src.ids[name]
	if !ok {
		id = len(e.src.names)
		e.src.ids[name] = id
		e.src.names = append(e.src.names, name)
		e.src.agree = append(e.src.agree, 0)
		e.src.total = append(e.src.total, 0)
		e.src.acc = append(e.src.acc, smoothedAccuracy(e.opts.Options, 0, 0))
		e.src.sigma = append(e.src.sigma, e.initSigma)
	}
	sigma, epoch = e.src.sigma[id], e.src.epoch
	e.src.mu.Unlock()
	return id, sigma, epoch
}

// lookupValue interns the value and returns its id.
func (e *Engine) lookupValue(name string) int {
	e.vals.mu.RLock()
	if id, ok := e.vals.ids[name]; ok {
		e.vals.mu.RUnlock()
		return id
	}
	e.vals.mu.RUnlock()
	e.vals.mu.Lock()
	id, ok := e.vals.ids[name]
	if !ok {
		id = len(e.vals.names)
		e.vals.ids[name] = id
		e.vals.names = append(e.vals.names, name)
	}
	e.vals.mu.Unlock()
	return id
}

// Observe ingests one claim. Re-claiming the same (source, object)
// replaces the previous value (single-truth semantics, as in the
// Fuser). Safe for concurrent use; for bit-deterministic results use a
// single ingesting goroutine or ObserveBatch.
func (e *Engine) Observe(source, objectName, value string) {
	sid, sigma, epoch := e.lookupSource(source)
	vid := e.lookupValue(value)
	sh := e.shardOf(objectName)
	sh.mu.Lock()
	sh.observe(e, objectName, sid, vid, sigma, epoch)
	sh.mu.Unlock()
	e.nObs.Add(1)
	e.met.Observations.Inc()
	if e.sinceEp.Add(1) >= e.epochLen {
		e.maybeRefresh()
	}
}

// resolvedClaim carries a claim's interned ids and the frozen σ it
// will be scored with, captured on the calling goroutine.
type resolvedClaim struct {
	sid   int
	vid   int
	sigma float64
	epoch int64
}

// ObserveBatch ingests a batch of claims with up to Workers
// goroutines. Sources and values are interned on the calling
// goroutine in batch order — so the dense ids (which the online
// learner's minibatch shuffle keys on) depend only on the claim
// stream, never on goroutine scheduling — then claims are partitioned
// by object shard and each shard applies its sub-sequence in batch
// order. The result is bit-identical for any worker count: the
// deterministic parallel ingest path.
func (e *Engine) ObserveBatch(batch []Triple) {
	if len(batch) == 0 {
		return
	}
	perShard := make([][]int, e.nShards)
	res := make([]resolvedClaim, len(batch))
	for i := range batch {
		tr := &batch[i]
		sid, sigma, epoch := e.lookupSource(tr.Source)
		res[i] = resolvedClaim{sid: sid, vid: e.lookupValue(tr.Value), sigma: sigma, epoch: epoch}
		s := ShardIndex(tr.Object, e.nShards)
		perShard[s] = append(perShard[s], i)
	}
	parallel.For(e.nShards, e.opts.Workers, func(s int) {
		ixs := perShard[s]
		if len(ixs) == 0 {
			return
		}
		sh := &e.shards[s]
		sh.mu.Lock()
		for _, i := range ixs {
			r := &res[i]
			sh.observe(e, batch[i].Object, r.sid, r.vid, r.sigma, r.epoch)
		}
		sh.mu.Unlock()
	})
	e.nObs.Add(int64(len(batch)))
	e.met.Observations.Add(uint64(len(batch)))
	if e.sinceEp.Add(int64(len(batch))) >= e.epochLen {
		e.maybeRefresh()
	}
}

// observe applies one claim to a shard-owned object. Caller holds
// sh.mu. The hot path is O(domain): a σ delta on the score slab and an
// in-place softmax. The first touch of an object in a new epoch
// rebuilds its scores against the fresh σ-table (O(claims), amortized
// once per object per epoch).
func (sh *shard) observe(e *Engine, name string, sid, vid int, sigma float64, epoch int64) {
	ix, ok := sh.index[name]
	if !ok {
		ix = sh.insert(e, name, epoch)
	}
	obj := &sh.objs[ix]
	if obj.epoch != epoch {
		sh.rescore(e, obj, epoch)
	}

	// Locate an existing claim by this source (claim lists are small:
	// the sources observing one object).
	ci := -1
	for i := range obj.claims {
		if obj.claims[i].src == int32(sid) {
			ci = i
			break
		}
	}
	sh.ensureSource(sid)
	sh.obsCount[sid]++
	switch {
	case ci >= 0 && obj.claims[ci].val == int32(vid):
		// Same claim re-asserted: scores and posterior are unchanged.
	case ci >= 0:
		// The source changed its mind: move its σ between values.
		old := obj.domainIndex(obj.claims[ci].val)
		obj.scores[old] -= sigma
		obj.refs[old]--
		nw := obj.ensureDomain(int32(vid))
		obj.scores[nw] += sigma
		obj.refs[nw]++
		obj.claims[ci].val = int32(vid)
		obj.refreshPosterior()
		obj.noteMAP(e.valueNames(), epoch)
	default:
		obj.claims = append(obj.claims, claim{src: int32(sid), val: int32(vid)})
		sh.deltaTotal[sid]++
		nw := obj.ensureDomain(int32(vid))
		obj.scores[nw] += sigma
		obj.refs[nw]++
		obj.refreshPosterior()
		obj.noteMAP(e.valueNames(), epoch)
	}
	if !obj.dirty {
		obj.dirty = true
		sh.dirtyIx = append(sh.dirtyIx, ix)
	}
	sh.lruTouch(ix)
}

// domainIndex returns the slab index of value v (present by
// construction).
func (o *object) domainIndex(v int32) int {
	for i, d := range o.domain {
		if d == v {
			return i
		}
	}
	panic("stream: value not in object domain")
}

// ensureDomain returns the slab index of v, appending a new domain
// entry when v is first claimed for this object.
func (o *object) ensureDomain(v int32) int {
	for i, d := range o.domain {
		if d == v {
			return i
		}
	}
	o.domain = append(o.domain, v)
	o.refs = append(o.refs, 0)
	o.scores = append(o.scores, 0)
	return len(o.domain) - 1
}

// rescore rebuilds an object's score slab against the current σ-table
// and stamps it with the epoch. Caller holds sh.mu.
func (sh *shard) rescore(e *Engine, obj *object, epoch int64) {
	for i := range obj.scores {
		obj.scores[i] = 0
	}
	e.src.mu.RLock()
	for i := range obj.claims {
		c := &obj.claims[i]
		obj.scores[obj.domainIndex(c.val)] += e.src.sigma[c.src]
	}
	e.src.mu.RUnlock()
	obj.refreshPosterior()
	obj.noteMAP(e.valueNames(), epoch)
	obj.epoch = epoch
}

// noteMAP refreshes the cached MAP domain index after a posterior
// change and stamps the flip epoch when the MAP value moved — the
// bookkeeping behind Row.Changed ("estimates that flipped since epoch
// E"). An object's very first claim counts as a flip: the estimate
// appeared. Caller holds the shard lock.
func (o *object) noteMAP(valNames []string, epoch int64) {
	ix := mapIndex(o, valNames)
	if ix >= 0 && ix != o.mapIx {
		o.mapIx = ix
		o.changed = epoch
	}
}

// mapIndex returns the domain index of the object's MAP value under
// the engine's tie-break (ties go to the lexically smaller value
// name), or -1 when the object has no posterior yet. Caller holds the
// shard lock and passes a valueNames() snapshot.
func mapIndex(o *object, valNames []string) int32 {
	if len(o.post) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(o.domain); i++ {
		if o.post[i] > o.post[best] ||
			(o.post[i] == o.post[best] && valNames[o.domain[i]] < valNames[o.domain[best]]) {
			best = i
		}
	}
	return int32(best)
}

// ensureSource grows the shard-local per-source vectors to cover sid.
func (sh *shard) ensureSource(sid int) {
	for len(sh.deltaAgree) <= sid {
		sh.deltaAgree = append(sh.deltaAgree, 0)
		sh.deltaTotal = append(sh.deltaTotal, 0)
		sh.obsCount = append(sh.obsCount, 0)
		sh.evictedAgree = append(sh.evictedAgree, 0)
		sh.evictedTotal = append(sh.evictedTotal, 0)
	}
}

// insert allocates (or reuses) an object slot, links it into the LRU,
// and evicts beyond the shard cap. Caller holds sh.mu.
func (sh *shard) insert(e *Engine, name string, epoch int64) int {
	var ix int
	if n := len(sh.free); n > 0 {
		ix = sh.free[n-1]
		sh.free = sh.free[:n-1]
		obj := &sh.objs[ix]
		obj.name = name
		obj.epoch = epoch
		obj.changed = 0
		obj.claims = obj.claims[:0]
		obj.domain = obj.domain[:0]
		obj.refs = obj.refs[:0]
		obj.scores = obj.scores[:0]
		obj.post = obj.post[:0]
		obj.mapIx = -1
		obj.dirty = false
		obj.live = true
	} else {
		ix = len(sh.objs)
		sh.objs = append(sh.objs, object{name: name, epoch: epoch, live: true, mapIx: -1, prev: -1, next: -1})
	}
	sh.index[name] = ix
	sh.lruPush(ix)
	sh.nLive++
	if e.shardCap > 0 && sh.nLive > e.shardCap {
		sh.evict(sh.lruTail)
		e.met.EvictedObjects.Inc()
	}
	return ix
}

// evict settles and drops the object in slot ix, retaining its
// posterior mass in the shard's evicted accumulators. Caller holds
// sh.mu.
func (sh *shard) evict(ix int) {
	obj := &sh.objs[ix]
	for i := range obj.claims {
		c := &obj.claims[i]
		p := obj.post[obj.domainIndex(c.val)]
		sh.deltaAgree[c.src] += p - c.settled
		sh.evictedAgree[c.src] += p
		sh.evictedTotal[c.src]++
		sh.evictedMass += p
	}
	sh.evictedObjects++
	sh.evictedClaims += int64(len(obj.claims))
	sh.lruUnlink(ix)
	delete(sh.index, obj.name)
	obj.name = ""
	obj.dirty = false
	obj.live = false
	sh.free = append(sh.free, ix)
	sh.nLive--
}

// lruPush links ix at the head (most recent). Caller holds sh.mu.
func (sh *shard) lruPush(ix int) {
	obj := &sh.objs[ix]
	obj.prev = -1
	obj.next = sh.lruHead
	if sh.lruHead >= 0 {
		sh.objs[sh.lruHead].prev = ix
	}
	sh.lruHead = ix
	if sh.lruTail < 0 {
		sh.lruTail = ix
	}
}

// lruUnlink removes ix from the list. Caller holds sh.mu.
func (sh *shard) lruUnlink(ix int) {
	obj := &sh.objs[ix]
	if obj.prev >= 0 {
		sh.objs[obj.prev].next = obj.next
	} else {
		sh.lruHead = obj.next
	}
	if obj.next >= 0 {
		sh.objs[obj.next].prev = obj.prev
	} else {
		sh.lruTail = obj.prev
	}
	obj.prev, obj.next = -1, -1
}

// lruTouch moves ix to the head. Caller holds sh.mu.
func (sh *shard) lruTouch(ix int) {
	if sh.lruHead == ix {
		return
	}
	sh.lruUnlink(ix)
	sh.lruPush(ix)
}

// drain folds the shard's dirty-object posterior drift into its delta
// vectors and hands (deltaAgree, deltaTotal, obsCount) to fold, which
// must copy what it needs; the vectors are zeroed before returning.
// Caller must not hold sh.mu.
func (sh *shard) drain(fold func(agree, total []float64, obs []int64)) {
	sh.mu.Lock()
	for _, ix := range sh.dirtyIx {
		obj := &sh.objs[ix]
		if !obj.dirty {
			continue // settled by eviction (or a duplicate entry)
		}
		for i := range obj.claims {
			c := &obj.claims[i]
			p := obj.post[obj.domainIndex(c.val)]
			if d := p - c.settled; d != 0 {
				sh.deltaAgree[c.src] += d
				c.settled = p
			}
		}
		obj.dirty = false
	}
	sh.dirtyIx = sh.dirtyIx[:0]
	fold(sh.deltaAgree, sh.deltaTotal, sh.obsCount)
	for i := range sh.deltaAgree {
		sh.deltaAgree[i] = 0
		sh.deltaTotal[i] = 0
		sh.obsCount[i] = 0
	}
	sh.mu.Unlock()
}

// maybeRefresh runs an epoch refresh if the observation budget is
// still spent once the refresh lock is held (another goroutine may
// have refreshed first).
func (e *Engine) maybeRefresh() {
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	if e.sinceEp.Load() < e.epochLen {
		return
	}
	e.sinceEp.Store(0)
	e.refreshLocked()
}

// refreshLocked drains every shard in shard order, folds the deltas
// into the global source state, recomputes accuracies and the
// σ-table, and bumps the epoch. Caller holds refreshMu.
func (e *Engine) refreshLocked() {
	var began time.Time
	if e.met.EpochRefreshSeconds != nil {
		began = time.Now()
	}
	// The merge buffers grow to cover whatever source ids the shard
	// drains reference: a concurrent Observe may intern new sources
	// after any initial count snapshot, so sizing is driven by the
	// drained vectors themselves, never by a stale length.
	agree := e.mergeAgree[:0]
	total := e.mergeTotal[:0]
	obs := e.mergeObs[:0]
	// Shard order fixes the float accumulation order: the drain is a
	// deterministic ordered reduction regardless of who ingested what.
	for s := range e.shards {
		e.shards[s].drain(func(da, dt []float64, oc []int64) {
			for len(agree) < len(da) {
				agree = append(agree, 0)
				total = append(total, 0)
				obs = append(obs, 0)
			}
			for i := range da {
				agree[i] += da[i]
				total[i] += dt[i]
				obs[i] += oc[i]
			}
		})
	}
	e.mergeAgree, e.mergeTotal, e.mergeObs = agree, total, obs
	n := len(agree) // every id here exists: interning precedes claims

	// Online mode: register newly interned sources, feed the learner
	// this epoch's settled deltas, and take the σ-table from its
	// feature-smoothed windowed estimates instead of the cumulative
	// agreement ratio. Predictions are computed for every registered
	// source (feature weights move every refresh, so even sources with
	// no traffic this epoch get a fresh σ), before src.mu is taken so
	// the lock order stays acyclic.
	var acc []float64
	if e.learner != nil {
		names := e.sourceNames()
		e.learnMu.Lock()
		for sid := e.learner.NumSources(); sid < len(names); sid++ {
			e.learner.SetFeatures(sid, e.features[names[sid]])
		}
		e.learner.ObserveEpoch(agree, total)
		acc = e.accScratch[:0]
		for s := range names {
			acc = append(acc, e.learner.Accuracy(s))
		}
		if e.met.FeatureWeightNorm != nil {
			e.met.FeatureWeightNorm.Set(e.learner.WeightNorm())
		}
		e.learnMu.Unlock()
		e.accScratch = acc
		e.met.LearnerEpochs.Inc()
	}

	e.src.mu.Lock()
	for s := 0; s < n; s++ {
		if e.opts.Decay < 1 && obs[s] > 0 {
			d := math.Pow(e.opts.Decay, float64(obs[s]))
			e.src.agree[s] *= d
			e.src.total[s] *= d
		}
		e.src.agree[s] += agree[s]
		e.src.total[s] += total[s]
		// Under decay the settled baseline shrinks while posterior
		// drift is still measured against the undecayed settle marks,
		// so a large downward drift can overshoot; evidence mass is
		// never negative.
		if e.src.agree[s] < 0 {
			e.src.agree[s] = 0
		}
		if acc == nil {
			e.src.acc[s] = smoothedAccuracy(e.opts.Options, e.src.agree[s], e.src.total[s])
			e.src.sigma[s] = mathx.Logit(e.src.acc[s])
		}
	}
	// acc covers the name-table snapshot; sources interned after it by
	// a concurrent Observe keep their prior σ until the next refresh.
	for s := 0; s < len(acc) && s < len(e.src.acc); s++ {
		e.src.acc[s] = acc[s]
		e.src.sigma[s] = mathx.Logit(acc[s])
	}
	e.src.epoch++
	epoch := e.src.epoch
	e.src.mu.Unlock()
	e.met.EpochRefreshes.Inc()
	e.met.Epoch.Set(float64(epoch))
	if e.met.EpochRefreshSeconds != nil {
		e.met.EpochRefreshSeconds.Observe(time.Since(began).Seconds())
	}
}

// Refine runs full re-estimation sweeps — accuracies from posteriors,
// then posteriors from the new accuracies — over all live objects,
// with evicted mass as the irreducible base. This is the exact
// re-sweep of the Fuser's Refine: both converge to the same fixed
// point, and the engine's result is bit-identical for any Workers
// count. Refine locks out epoch refreshes; for deterministic output
// do not ingest concurrently.
func (e *Engine) Refine(sweeps int) {
	if sweeps <= 0 {
		return
	}
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	type mass struct{ agree, total []float64 }
	for sweep := 0; sweep < sweeps; sweep++ {
		// Per-shard partial sums under the current posteriors; each
		// claim's settled mark moves to the value just summed so later
		// drains stay consistent with the rebuilt global state. The
		// vectors are sized by the ids actually referenced (a
		// concurrent Observe may intern sources mid-sweep, so a
		// snapshotted global count would be stale).
		parts := parallel.Map(e.nShards, e.opts.Workers, func(s int) mass {
			sh := &e.shards[s]
			sh.mu.Lock()
			defer sh.mu.Unlock()
			m := mass{
				agree: make([]float64, len(sh.evictedAgree)),
				total: make([]float64, len(sh.evictedTotal)),
			}
			copy(m.agree, sh.evictedAgree)
			copy(m.total, sh.evictedTotal)
			grow := func(sid int32) {
				for len(m.agree) <= int(sid) {
					m.agree = append(m.agree, 0)
					m.total = append(m.total, 0)
				}
			}
			for ix := range sh.objs {
				obj := &sh.objs[ix]
				if !obj.live {
					continue
				}
				for i := range obj.claims {
					c := &obj.claims[i]
					p := obj.post[obj.domainIndex(c.val)]
					grow(c.src)
					m.agree[c.src] += p
					m.total[c.src]++
					c.settled = p
				}
				obj.dirty = false
			}
			sh.dirtyIx = sh.dirtyIx[:0]
			for i := range sh.deltaAgree {
				sh.deltaAgree[i] = 0
				sh.deltaTotal[i] = 0
				sh.obsCount[i] = 0
			}
			return m
		})
		n := 0
		for _, m := range parts {
			if len(m.agree) > n {
				n = len(m.agree)
			}
		}
		if n == 0 {
			return
		}
		// Online mode mirrors core.Calibrate's structure sweep by
		// sweep: pool the exact per-source agreement mass (in shard
		// order — deterministic), refit the feature weights on it
		// (FitMass, the feature-pooling SGD pass), then re-anchor each
		// source's accuracy with the closed-form empirical-Bayes step
		// below. Registration runs inside the sweep because a
		// concurrent Observe may intern sources mid-sweep.
		var fullAgree, fullTotal []float64
		if e.learner != nil {
			fullAgree = make([]float64, n)
			fullTotal = make([]float64, n)
			for s := 0; s < n; s++ {
				for _, m := range parts {
					if s < len(m.agree) {
						fullAgree[s] += m.agree[s]
						fullTotal[s] += m.total[s]
					}
				}
			}
			names := e.sourceNames()
			e.learnMu.Lock()
			for sid := e.learner.NumSources(); sid < len(names); sid++ {
				e.learner.SetFeatures(sid, e.features[names[sid]])
			}
			e.learner.FitMass(fullAgree, fullTotal)
			e.learnMu.Unlock()
		}
		e.src.mu.Lock()
		// In online mode every registered source gets a fresh estimate
		// (zero-mass sources fall back to their feature prior).
		// Reading the learner without learnMu is safe here: mutation
		// only happens under refreshMu, which Refine holds.
		hi := n
		if e.learner != nil && len(e.src.acc) > hi {
			hi = len(e.src.acc)
		}
		for s := 0; s < hi; s++ {
			var a, t float64
			if fullAgree != nil {
				if s < n {
					a, t = fullAgree[s], fullTotal[s]
				}
			} else {
				for _, m := range parts { // shard order: deterministic
					if s < len(m.agree) {
						a += m.agree[s]
						t += m.total[s]
					}
				}
			}
			e.src.agree[s] = a
			e.src.total[s] = t
			if e.learner != nil && s < e.learner.NumSources() {
				e.src.acc[s] = e.learner.Blend(s, a, t)
			} else {
				e.src.acc[s] = smoothedAccuracy(e.opts.Options, a, t)
			}
			e.src.sigma[s] = mathx.Logit(e.src.acc[s])
		}
		e.src.epoch++
		epoch := e.src.epoch
		e.src.mu.Unlock()
		// Rescore every live object under the fresh σ and mark it
		// dirty so the drift vs. its settled mass folds in later.
		parallel.For(e.nShards, e.opts.Workers, func(s int) {
			sh := &e.shards[s]
			sh.mu.Lock()
			for ix := range sh.objs {
				obj := &sh.objs[ix]
				if !obj.live {
					continue
				}
				sh.rescore(e, obj, epoch)
				if !obj.dirty {
					obj.dirty = true
					sh.dirtyIx = append(sh.dirtyIx, ix)
				}
			}
			sh.mu.Unlock()
		})
		e.met.RefineSweeps.Inc()
		e.met.Epoch.Set(float64(epoch))
	}
	e.sinceEp.Store(0)
}

// Value returns the current MAP estimate and posterior probability for
// an object; ok is false for unknown (or evicted) objects. Ties break
// to the lexically smaller value name, as in the Fuser. Safe to call
// during ingest.
func (e *Engine) Value(objectName string) (value string, confidence float64, ok bool) {
	sh := e.shardOf(objectName)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ix, found := sh.index[objectName]
	if !found {
		return "", 0, false
	}
	return mapValue(&sh.objs[ix], e.valueNames())
}

// valueNames snapshots the value name table without holding its lock
// across caller loops: names is append-only and every published index
// is immutable, so the returned header stays valid. Capture it after
// locking a shard and it covers every value id that shard's claims
// reference (interning happens-before claim insertion).
func (e *Engine) valueNames() []string {
	e.vals.mu.RLock()
	names := e.vals.names
	e.vals.mu.RUnlock()
	return names
}

// sourceNames is the source-table analog of valueNames.
func (e *Engine) sourceNames() []string {
	e.src.mu.RLock()
	names := e.src.names
	e.src.mu.RUnlock()
	return names
}

// mapValue extracts the MAP (value name, probability) of an object.
// Caller holds the object's shard lock (read or write) and passes a
// valueNames() snapshot taken under it.
func mapValue(obj *object, valNames []string) (string, float64, bool) {
	if len(obj.post) == 0 {
		return "", 0, false
	}
	best := valNames[obj.domain[0]]
	bestP := obj.post[0]
	for i := 1; i < len(obj.domain); i++ {
		name := valNames[obj.domain[i]]
		p := obj.post[i]
		if p > bestP || (p == bestP && name < best) {
			best, bestP = name, p
		}
	}
	return best, bestP, true
}

// SourceAccuracy returns the frozen-epoch accuracy estimate for a
// source (the prior for unknown sources). Evidence from the current
// epoch is reflected after the next refresh or Refine. Safe to call
// during ingest.
func (e *Engine) SourceAccuracy(source string) float64 {
	e.src.mu.RLock()
	defer e.src.mu.RUnlock()
	if id, ok := e.src.ids[source]; ok {
		return e.src.acc[id]
	}
	return e.opts.InitAccuracy
}

// OnlineLearning reports whether the discriminative reliability
// learner is active.
func (e *Engine) OnlineLearning() bool { return e.learner != nil }

// SourceAccuracyDetail decomposes a known source's estimate in online
// mode: acc is the served accuracy (the σ-table entry), learned is the
// pure feature-model prediction, and empirical is the prior-smoothed
// cumulative agreement ratio (what a featureless engine would serve).
// ok is false for unknown sources or when online learning is off.
// Safe to call during ingest.
func (e *Engine) SourceAccuracyDetail(source string) (acc, learned, empirical float64, ok bool) {
	if e.learner == nil {
		return 0, 0, 0, false
	}
	e.src.mu.RLock()
	id, known := e.src.ids[source]
	if known {
		acc = e.src.acc[id]
		empirical = smoothedAccuracy(e.opts.Options, e.src.agree[id], e.src.total[id])
	}
	e.src.mu.RUnlock()
	if !known {
		return 0, 0, 0, false
	}
	e.learnMu.RLock()
	if id < e.learner.NumSources() {
		learned = e.learner.Predict(id)
	} else {
		// Interned but not yet registered (no refresh since): predict
		// from its configured labels alone.
		learned = e.learner.PredictLabels(e.features[source])
	}
	e.learnMu.RUnlock()
	return acc, learned, empirical, true
}

// FeatureWeights snapshots the online learner's model: the intercept
// plus every interned (label, weight) pair in intern order. ok is
// false when the engine has no online learner. Safe to call during
// ingest.
func (e *Engine) FeatureWeights() (intercept float64, feats []online.WeightedFeature, ok bool) {
	if e.learner == nil {
		return 0, nil, false
	}
	e.learnMu.RLock()
	defer e.learnMu.RUnlock()
	intercept, feats = e.learner.FeatureWeights()
	return intercept, feats, true
}

// PredictAccuracy estimates the accuracy of a source never seen on the
// stream from feature labels alone — the serving analog of
// core.Model.PredictAccuracy (Section 5.3.2). Returns the prior when
// online learning is off. Safe to call during ingest.
func (e *Engine) PredictAccuracy(labels []string) float64 {
	if e.learner == nil {
		return e.opts.InitAccuracy
	}
	e.learnMu.RLock()
	defer e.learnMu.RUnlock()
	return e.learner.PredictLabels(labels)
}

// Sources returns the known source names in sorted order. Safe to
// call during ingest.
func (e *Engine) Sources() []string {
	out := append([]string(nil), e.sourceNames()...)
	sort.Strings(out)
	return out
}

// Estimate is one live object's MAP value and its posterior
// probability.
type Estimate struct {
	Object     string
	Value      string
	Confidence float64
}

// shardEstimates snapshots one shard's live estimates under its read
// lock, sorted by object name.
func (e *Engine) shardEstimates(s int) []Estimate {
	sh := &e.shards[s]
	sh.mu.RLock()
	valNames := e.valueNames()
	out := make([]Estimate, 0, sh.nLive)
	for ix := range sh.objs {
		obj := &sh.objs[ix]
		if !obj.live {
			continue
		}
		if v, conf, ok := mapValue(obj, valNames); ok {
			out = append(out, Estimate{obj.name, v, conf})
		}
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Object < out[j].Object })
	return out
}

// EstimateAll returns every live object's MAP estimate with its
// confidence, sorted by object name — one locked pass per shard, so
// callers that need both value and confidence never re-derive MAPs
// object by object. Safe to call during ingest. For huge object
// counts prefer EstimatesSeq, which never materializes the full set.
func (e *Engine) EstimateAll() []Estimate {
	parts := parallel.Map(e.nShards, e.opts.Workers, e.shardEstimates)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]Estimate, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Object < all[j].Object })
	return all
}

// EstimatesSeq yields every live object's estimate while holding at
// most one shard's snapshot in memory — the streaming emitter behind
// /estimates and the CLI CSV, sized for object counts where one
// all-objects map or slice would not fit. Order is shard-major with
// names sorted within each shard: deterministic for a fixed shard
// count (and so byte-stable across runs and worker counts), but not
// globally sorted the way EstimateAll is. Safe to call during ingest;
// no locks are held while the consumer runs.
func (e *Engine) EstimatesSeq() iter.Seq[Estimate] {
	return func(yield func(Estimate) bool) {
		for s := 0; s < e.nShards; s++ {
			for _, est := range e.shardEstimates(s) {
				if !yield(est) {
					return
				}
			}
		}
	}
}

// Estimates returns the MAP value of every live object. Safe to call
// during ingest (each shard is snapshotted under its read lock).
func (e *Engine) Estimates() map[string]string {
	live := 0
	for s := range e.shards {
		sh := &e.shards[s]
		sh.mu.RLock()
		live += sh.nLive
		sh.mu.RUnlock()
	}
	est := make(map[string]string, live)
	for x := range e.EstimatesSeq() {
		est[x.Object] = x.Value
	}
	return est
}

// EngineStats reports the engine's size and eviction accounting.
type EngineStats struct {
	Shards         int
	Sources        int
	Objects        int // live objects
	Observations   int64
	Epoch          int64
	EpochLength    int64 // observations per epoch; ExternalEpochLength in cluster member mode
	EvictedObjects int64
	EvictedClaims  int64
	EvictedMass    float64 // posterior agreement mass retained from evicted objects
}

// Stats snapshots the engine counters. Safe to call during ingest.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{Shards: e.nShards, Observations: e.nObs.Load(), EpochLength: e.epochLen}
	e.src.mu.RLock()
	st.Sources = len(e.src.names)
	st.Epoch = e.src.epoch
	e.src.mu.RUnlock()
	for s := range e.shards {
		sh := &e.shards[s]
		sh.mu.RLock()
		st.Objects += sh.nLive
		st.EvictedObjects += sh.evictedObjects
		st.EvictedClaims += sh.evictedClaims
		st.EvictedMass += sh.evictedMass
		sh.mu.RUnlock()
	}
	return st
}

// MarkSeq records an ingest idempotency key and reports whether it
// was new: true means the caller should ingest the batch, false means
// the key is a replay inside the dedup window and the batch has
// already been applied. The window is a bounded ring — once full, the
// oldest key is forgotten — sized by EngineOptions.DedupWindow.
func (e *Engine) MarkSeq(key string) bool {
	if key == "" {
		return true
	}
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	if _, dup := e.seqSet[key]; dup {
		return false
	}
	if len(e.seqKeys) < e.seqCap {
		e.seqKeys = append(e.seqKeys, key)
	} else {
		delete(e.seqSet, e.seqKeys[e.seqHead])
		e.seqKeys[e.seqHead] = key
		e.seqHead = (e.seqHead + 1) % e.seqCap
	}
	e.seqSet[key] = struct{}{}
	return true
}

// SeqSeen reports whether key is currently inside the dedup window
// without recording it — the fast pre-lock duplicate check.
func (e *Engine) SeqSeen(key string) bool {
	if key == "" {
		return false
	}
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	_, dup := e.seqSet[key]
	return dup
}

// seqSnapshot copies the dedup window oldest-first (the order MarkSeq
// replay must reinsert to preserve eviction order).
func (e *Engine) seqSnapshot() []string {
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	if len(e.seqKeys) < e.seqCap {
		return append([]string(nil), e.seqKeys...)
	}
	out := make([]string, 0, len(e.seqKeys))
	out = append(out, e.seqKeys[e.seqHead:]...)
	out = append(out, e.seqKeys[:e.seqHead]...)
	return out
}

// Snapshot exports the live claims as an immutable Dataset plus the
// current MAP estimates, for handing to the batch SLiMFast pipeline.
// Evicted objects are not included (their state is gone by contract).
func (e *Engine) Snapshot(name string) (*data.Dataset, data.TruthMap) {
	type row struct{ object, source, value string }
	var rows []row
	for s := range e.shards {
		sh := &e.shards[s]
		sh.mu.RLock()
		valNames := e.valueNames()
		srcNames := e.sourceNames()
		for ix := range sh.objs {
			obj := &sh.objs[ix]
			if !obj.live {
				continue
			}
			for i := range obj.claims {
				c := &obj.claims[i]
				rows = append(rows, row{obj.name, srcNames[c.src], valNames[c.val]})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].object != rows[j].object {
			return rows[i].object < rows[j].object
		}
		return rows[i].source < rows[j].source
	})
	b := data.NewBuilder(name)
	for _, r := range rows {
		b.ObserveNames(r.source, r.object, r.value)
	}
	ds := b.Freeze()
	estimates := data.TruthMap{}
	if tm, err := data.TruthFromNames(ds, e.Estimates()); err == nil {
		estimates = tm
	}
	return ds, estimates
}
