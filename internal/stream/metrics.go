// Engine and checkpoint instrumentation: a seam of obs metrics the
// serving layer wires in at boot. Every field is optional — the zero
// Metrics value is a no-op (obs methods are nil-receiver-safe), so
// library users and tests pay nothing. The hot-path increments
// (Observations in Observe/ObserveBatch) are single atomic adds and
// keep the engine's 0 allocs/op ingest contract.
package stream

import (
	"slimfast/internal/obs"
)

// Metrics is the engine's instrumentation seam. Attach with
// Engine.SetMetrics before ingest begins; the engine never mutates
// the struct.
type Metrics struct {
	// Observations counts triples ingested (Observe and ObserveBatch).
	Observations *obs.Counter
	// EpochRefreshes counts epoch-boundary σ-table refreshes;
	// EpochRefreshSeconds times them; Epoch tracks the current epoch.
	EpochRefreshes      *obs.Counter
	EpochRefreshSeconds *obs.Histogram
	Epoch               *obs.Gauge
	// RefineSweeps counts full re-estimation sweeps.
	RefineSweeps *obs.Counter
	// EvictedObjects counts LRU evictions under the shard cap.
	EvictedObjects *obs.Counter
	// LearnerEpochs counts online-learner training epochs;
	// FeatureWeightNorm tracks the L2 norm of its weight vector.
	LearnerEpochs     *obs.Counter
	FeatureWeightNorm *obs.Gauge
}

// NewMetrics registers the engine metric families on reg and returns
// the wired seam.
func NewMetrics(reg *obs.Registry) Metrics {
	return Metrics{
		Observations:        reg.Counter("slimfast_engine_observations_total", "Claim triples ingested by the engine."),
		EpochRefreshes:      reg.Counter("slimfast_engine_epoch_refreshes_total", "Epoch-boundary source-accuracy refreshes."),
		EpochRefreshSeconds: reg.Histogram("slimfast_engine_epoch_refresh_seconds", "Epoch refresh duration (shard drains + accuracy recompute).", nil),
		Epoch:               reg.Gauge("slimfast_engine_epoch", "Current engine epoch."),
		RefineSweeps:        reg.Counter("slimfast_engine_refine_sweeps_total", "Full re-estimation sweeps run by Refine."),
		EvictedObjects:      reg.Counter("slimfast_engine_evicted_objects_total", "Objects evicted by the per-shard LRU cap."),
		LearnerEpochs:       reg.Counter("slimfast_engine_learner_epochs_total", "Online-learner training epochs."),
		FeatureWeightNorm:   reg.Gauge("slimfast_engine_feature_weight_norm", "L2 norm of the online learner's weight vector."),
	}
}

// SetMetrics attaches an instrumentation seam. Call once at wiring
// time, before concurrent ingest begins.
func (e *Engine) SetMetrics(m Metrics) { e.met = m }

// StoreMetrics is the checkpoint store's instrumentation seam; like
// Metrics, the zero value is a no-op.
type StoreMetrics struct {
	// Writes counts checkpoint generations written; WriteErrors the
	// failed attempts; WriteSeconds times the temp+sync+rename chain;
	// LastBytes is the size of the newest generation.
	Writes       *obs.Counter
	WriteErrors  *obs.Counter
	WriteSeconds *obs.Histogram
	LastBytes    *obs.Gauge
	// Restores counts successful restores; Fallbacks counts restores
	// that had to skip at least one damaged generation.
	Restores  *obs.Counter
	Fallbacks *obs.Counter
}

// NewStoreMetrics registers the checkpoint metric families on reg.
func NewStoreMetrics(reg *obs.Registry) StoreMetrics {
	return StoreMetrics{
		Writes:       reg.Counter("slimfast_checkpoint_writes_total", "Checkpoint generations written."),
		WriteErrors:  reg.Counter("slimfast_checkpoint_write_errors_total", "Checkpoint write attempts that failed."),
		WriteSeconds: reg.Histogram("slimfast_checkpoint_write_seconds", "Checkpoint write duration (encode + fsync + rotate).", nil),
		LastBytes:    reg.Gauge("slimfast_checkpoint_last_bytes", "Size of the newest checkpoint generation in bytes."),
		Restores:     reg.Counter("slimfast_checkpoint_restores_total", "Successful checkpoint restores."),
		Fallbacks:    reg.Counter("slimfast_checkpoint_fallbacks_total", "Restores that skipped at least one damaged generation."),
	}
}
