// Durable checkpoint/restore for the sharded engine: the warm-restart
// path that turns the streaming reproduction into a long-running
// service. WriteCheckpoint serializes every shard's dense compiled
// state — interned ids, log-odds slabs, epoch σ-tables, LRU links,
// free lists, settle marks, and evicted-mass accounting — through the
// versioned, checksummed internal/wire codec, and Restore rebuilds an
// engine whose continued ingest is bit-identical to one that never
// stopped.
//
// The format captures state the engine could in principle recompute
// (cached posteriors, frozen accuracies) as well as state it could
// not (scores accumulate σ deltas across epochs), because the
// restart-determinism guarantee is about float *bits*: every
// accumulation order the live engine would have used — slab slot
// order in Refine, dirty-list order in drains, LIFO free-slot reuse —
// must survive the round trip, so all of it is written explicitly.
package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"slimfast/internal/online"
	"slimfast/internal/wire"
)

// Format versions. v1 is the PR 4 layout; v2 appends the online
// discriminative-learning section — the Features table, the learner
// configuration (options block) and the learner state (weights, window
// ring, RNG/step counters) after the shard records. v3 adds the
// ingest idempotency state: the resolved DedupWindow in the options
// block and the sequence-key ring after the learner section, so a
// client retry that straddles a restart still deduplicates. v4 adds
// one int64 per live object — the epoch its MAP value last changed —
// so the query surface's "flipped since epoch E" survives a restart.
// Writers always emit the current version; Restore reads all four, so
// older checkpoints keep warm-booting (v3 and older restore with an
// empty dedup window and/or zeroed flip epochs).
const (
	checkpointMagic     = "SFCK"
	checkpointVersionV1 = uint32(1)
	checkpointVersionV2 = uint32(2)
	checkpointVersionV3 = uint32(3)
	checkpointVersion   = uint32(4)
)

// maxCheckpointSlots bounds slab and claim counts read from a
// checkpoint before its checksum has been verified. Decoding also
// grows those slabs as records actually arrive (growSlots at a time)
// rather than preallocating the declared count, so a corrupted
// length cannot drive an absurd allocation: on a finite stream it
// just runs into wire.ErrTruncated.
const (
	maxCheckpointSlots = 1 << 28
	growSlots          = 1 << 12
)

// maxCheckpointShards bounds the shard count a checkpoint may declare
// before the engine skeleton is built. Shard counts track CPU cores
// (default GOMAXPROCS), so 4096 is far beyond any real deployment —
// but NewEngine allocates eagerly per shard, and without this guard a
// corrupted count costs seconds of allocation before the checksum is
// ever checked.
const maxCheckpointShards = 1 << 12

// Typed restore failures, matched with errors.Is. Wire-level failures
// (wire.ErrMagic, wire.ErrVersion, wire.ErrChecksum,
// wire.ErrTruncated) pass through wrapped, so a caller can
// distinguish "not a checkpoint" from "a damaged one".
var (
	// ErrShardCount means the checkpoint's shard records do not agree
	// with its own header — the file was assembled from mismatched
	// pieces and cannot describe one consistent engine.
	ErrShardCount = errors.New("stream: checkpoint shard count mismatch")
	// ErrCorrupt means a structural invariant failed during decode
	// (dangling ids, ragged slabs, out-of-range links) even though the
	// bytes themselves parsed.
	ErrCorrupt = errors.New("stream: corrupt checkpoint")
)

// shardSnapshot is one shard's state, deep-copied under the shard's
// read lock so encoding happens with no locks held (the copy-on-read
// half of "safe concurrent with ingest").
type shardSnapshot struct {
	objs           []object
	free           []int
	dirtyIx        []int
	lruHead        int
	lruTail        int
	deltaAgree     []float64
	deltaTotal     []float64
	obsCount       []int64
	evictedAgree   []float64
	evictedTotal   []float64
	evictedObjects int64
	evictedClaims  int64
	evictedMass    float64
}

// snapshot deep-copies the shard. Dead (freelist) slots keep only
// their placeholder: their slice contents are garbage by contract and
// are not part of the format.
func (sh *shard) snapshot() shardSnapshot {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sn := shardSnapshot{
		objs:           make([]object, len(sh.objs)),
		free:           append([]int(nil), sh.free...),
		dirtyIx:        append([]int(nil), sh.dirtyIx...),
		lruHead:        sh.lruHead,
		lruTail:        sh.lruTail,
		deltaAgree:     append([]float64(nil), sh.deltaAgree...),
		deltaTotal:     append([]float64(nil), sh.deltaTotal...),
		obsCount:       append([]int64(nil), sh.obsCount...),
		evictedAgree:   append([]float64(nil), sh.evictedAgree...),
		evictedTotal:   append([]float64(nil), sh.evictedTotal...),
		evictedObjects: sh.evictedObjects,
		evictedClaims:  sh.evictedClaims,
		evictedMass:    sh.evictedMass,
	}
	for ix := range sh.objs {
		src := &sh.objs[ix]
		dst := &sn.objs[ix]
		if !src.live {
			dst.live = false
			dst.prev, dst.next = -1, -1
			continue
		}
		*dst = *src
		dst.claims = append([]claim(nil), src.claims...)
		dst.domain = append([]int32(nil), src.domain...)
		dst.refs = append([]int32(nil), src.refs...)
		dst.scores = append([]float64(nil), src.scores...)
		dst.post = append([]float64(nil), src.post...)
	}
	return sn
}

// WriteCheckpoint serializes the engine to w. It is safe to call
// concurrently with ingest: each shard is deep-copied under its read
// lock, in shard order, with the refresh lock held so no epoch
// refresh interleaves between shard copies; encoding then runs with
// no engine locks held. A checkpoint taken while ingest is in flight
// is a consistent engine state, but only a quiescent checkpoint
// carries the bit-exact restart-determinism guarantee.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	e.refreshMu.Lock()
	snaps := make([]shardSnapshot, e.nShards)
	for s := range e.shards {
		snaps[s] = e.shards[s].snapshot()
	}
	// Tables are copied after the shards: interning precedes claim
	// insertion, so every source/value id referenced by the shard
	// copies above is covered by the (later, larger-or-equal) tables.
	e.src.mu.RLock()
	srcNames := append([]string(nil), e.src.names...)
	srcAgree := append([]float64(nil), e.src.agree...)
	srcTotal := append([]float64(nil), e.src.total...)
	srcAcc := append([]float64(nil), e.src.acc...)
	srcSigma := append([]float64(nil), e.src.sigma...)
	srcEpoch := e.src.epoch
	e.src.mu.RUnlock()
	valNames := e.valueNames()
	nObs := e.nObs.Load()
	sinceEp := e.sinceEp.Load()
	opts := e.opts
	opts.Shards = e.nShards            // pin the resolved count: GOMAXPROCS on the
	opts.EpochLength = int(e.epochLen) // restoring host must not change the layout
	opts.DedupWindow = e.seqCap        // pin so the restored window evicts identically
	var learnerSnap *online.Learner
	if e.learner != nil {
		// Pin the resolved learner config too (Learn may have been the
		// zero value), and deep-copy the state so encoding runs with no
		// engine locks held. Learner mutation happens under refreshMu,
		// which is held here.
		opts.OnlineLearn = true
		opts.Learn = e.learner.Config()
		opts.Features = e.features
		learnerSnap = e.learner.Clone()
	}
	e.refreshMu.Unlock()
	seqKeys := e.seqSnapshot()

	bw := bufio.NewWriter(w)
	ww := wire.NewWriter(bw, checkpointMagic, checkpointVersion)
	encodeOptions(ww, opts)
	ww.Int64(nObs)
	ww.Int64(sinceEp)
	ww.Strings(srcNames)
	ww.Float64s(srcAgree)
	ww.Float64s(srcTotal)
	ww.Float64s(srcAcc)
	ww.Float64s(srcSigma)
	ww.Int64(srcEpoch)
	ww.Strings(valNames)
	ww.Uint32(uint32(len(snaps)))
	for s := range snaps {
		encodeShard(ww, s, &snaps[s])
	}
	if learnerSnap != nil {
		learnerSnap.EncodeState(ww)
	}
	ww.Strings(seqKeys)
	if err := ww.Close(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	return nil
}

// encodeOptions writes the EngineOptions block (resolved values, not
// the zero-means-default originals). The v2 tail carries the online
// section header: the learn switch, the resolved learner config, and
// the source-feature table (sorted by source name, so the bytes are
// deterministic regardless of map order).
func encodeOptions(w *wire.Writer, o EngineOptions) {
	w.Float64(o.InitAccuracy)
	w.Float64(o.PriorStrength)
	w.Float64(o.Decay)
	w.Int(o.Shards)
	w.Int(o.Workers)
	w.Int(o.EpochLength)
	w.Int(o.MaxObjects)
	w.Int(o.DedupWindow)
	w.Bool(o.OnlineLearn)
	if !o.OnlineLearn {
		return
	}
	online.EncodeConfig(w, o.Learn)
	names := make([]string, 0, len(o.Features))
	for name := range o.Features {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uint32(uint32(len(names)))
	for _, name := range names {
		w.String(name)
		w.Strings(o.Features[name])
	}
}

func decodeOptions(r *wire.Reader, version uint32) (EngineOptions, error) {
	var o EngineOptions
	o.InitAccuracy = r.Float64()
	o.PriorStrength = r.Float64()
	o.Decay = r.Float64()
	o.Shards = r.Int()
	o.Workers = r.Int()
	o.EpochLength = r.Int()
	o.MaxObjects = r.Int()
	if version >= 3 {
		o.DedupWindow = r.Int()
	}
	if version < 2 {
		return o, nil
	}
	o.OnlineLearn = r.Bool()
	if !o.OnlineLearn {
		return o, nil
	}
	o.Learn = online.DecodeConfig(r)
	nFeat := int(r.Uint32())
	if err := r.Err(); err != nil {
		return o, err
	}
	if nFeat > maxCheckpointSlots {
		return o, corruptf("options declare %d feature rows", nFeat)
	}
	if nFeat > 0 {
		o.Features = make(map[string][]string, nFeat)
		for i := 0; i < nFeat; i++ {
			if err := r.Err(); err != nil {
				return o, err
			}
			name := r.String()
			labels := r.Strings()
			if _, dup := o.Features[name]; dup {
				return o, corruptf("feature table lists source %q twice", name)
			}
			o.Features[name] = labels
		}
	}
	return o, r.Err()
}

// encodeShard writes one shard record: an index tag (so Restore can
// detect reordered or mismatched records), the full object slab in
// slot order, and the shard-local accumulators.
func encodeShard(w *wire.Writer, s int, sn *shardSnapshot) {
	w.Uint32(uint32(s))
	w.Uint32(uint32(len(sn.objs)))
	for ix := range sn.objs {
		obj := &sn.objs[ix]
		w.Bool(obj.live)
		if !obj.live {
			continue
		}
		w.String(obj.name)
		w.Int64(obj.epoch)
		w.Int64(obj.changed)
		w.Int(obj.prev)
		w.Int(obj.next)
		w.Bool(obj.dirty)
		w.Uint32(uint32(len(obj.claims)))
		for i := range obj.claims {
			c := &obj.claims[i]
			w.Uint32(uint32(c.src))
			w.Uint32(uint32(c.val))
			w.Float64(c.settled)
		}
		w.Int32s(obj.domain)
		w.Int32s(obj.refs)
		w.Float64s(obj.scores)
		w.Float64s(obj.post)
	}
	w.Ints(sn.free)
	w.Ints(sn.dirtyIx)
	w.Int(sn.lruHead)
	w.Int(sn.lruTail)
	w.Float64s(sn.deltaAgree)
	w.Float64s(sn.deltaTotal)
	w.Int64s(sn.obsCount)
	w.Float64s(sn.evictedAgree)
	w.Float64s(sn.evictedTotal)
	w.Int64(sn.evictedObjects)
	w.Int64(sn.evictedClaims)
	w.Float64(sn.evictedMass)
}

// corruptf builds an ErrCorrupt with positional detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Restore reads a checkpoint written by WriteCheckpoint and returns a
// fresh engine positioned exactly where the checkpointed one was:
// continuing the same ingest sequence yields bit-identical
// fingerprints to an engine that never stopped. On any failure —
// truncation, checksum mismatch, version skew, shard-count mismatch,
// structural corruption — it returns a nil engine and a typed error;
// no partially-restored engine ever escapes.
func Restore(r io.Reader) (*Engine, error) {
	rr, version, err := wire.NewReaderVersions(bufio.NewReader(r), checkpointMagic,
		checkpointVersionV1, checkpointVersionV2, checkpointVersionV3, checkpointVersion)
	if err != nil {
		return nil, fmt.Errorf("stream: restore: %w", err)
	}
	opts, err := decodeOptions(rr, version)
	if err != nil {
		return nil, fmt.Errorf("stream: restore: %w", err)
	}
	nObs := rr.Int64()
	sinceEp := rr.Int64()
	srcNames := rr.Strings()
	srcAgree := rr.Float64s()
	srcTotal := rr.Float64s()
	srcAcc := rr.Float64s()
	srcSigma := rr.Float64s()
	srcEpoch := rr.Int64()
	valNames := rr.Strings()
	nShards := int(rr.Uint32())
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("stream: restore: %w", err)
	}
	nSrc := len(srcNames)
	if len(srcAgree) != nSrc || len(srcTotal) != nSrc || len(srcAcc) != nSrc || len(srcSigma) != nSrc {
		return nil, corruptf("source table is ragged: %d names vs %d/%d/%d/%d stats",
			nSrc, len(srcAgree), len(srcTotal), len(srcAcc), len(srcSigma))
	}
	if nShards <= 0 || nShards != opts.Shards {
		return nil, fmt.Errorf("%w: header says %d shard records, options say %d", ErrShardCount, nShards, opts.Shards)
	}
	if nShards > maxCheckpointShards {
		return nil, corruptf("checkpoint declares %d shards, cap is %d", nShards, maxCheckpointShards)
	}

	e, err := NewEngine(opts)
	if err != nil {
		return nil, fmt.Errorf("stream: restore: %w", err)
	}
	for i, name := range srcNames {
		e.src.ids[name] = i
	}
	e.src.names = srcNames
	e.src.agree = srcAgree
	e.src.total = srcTotal
	e.src.acc = srcAcc
	e.src.sigma = srcSigma
	e.src.epoch = srcEpoch
	for i, name := range valNames {
		e.vals.ids[name] = i
	}
	e.vals.names = valNames

	for s := 0; s < nShards; s++ {
		if err := decodeShard(rr, version, e, s, nSrc, len(valNames)); err != nil {
			return nil, err
		}
	}
	if e.learner != nil {
		// NewEngine built a fresh learner from the decoded config;
		// overlay the checkpointed state so training continues exactly
		// where it stopped. Structural failures are corruption, not a
		// format skew.
		if err := e.learner.DecodeState(rr); err != nil {
			if rr.Err() != nil {
				return nil, fmt.Errorf("stream: restore: %w", rr.Err())
			}
			return nil, corruptf("online learner: %v", err)
		}
		if n := e.learner.NumSources(); n > nSrc {
			return nil, corruptf("online learner tracks %d sources, table has %d", n, nSrc)
		}
	}
	if version >= 3 {
		seqKeys := rr.Strings()
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("stream: restore: %w", err)
		}
		if len(seqKeys) > e.seqCap {
			return nil, corruptf("dedup window holds %d keys, cap is %d", len(seqKeys), e.seqCap)
		}
		for _, k := range seqKeys {
			if k == "" {
				return nil, corruptf("dedup window holds an empty key")
			}
			e.MarkSeq(k)
		}
	}
	if err := rr.Close(); err != nil {
		return nil, fmt.Errorf("stream: restore: %w", err)
	}
	e.nObs.Store(nObs)
	e.sinceEp.Store(sinceEp)
	return e, nil
}

// decodeShard reads one shard record into e.shards[s], validating
// every id and index against the tables decoded so far.
func decodeShard(rr *wire.Reader, version uint32, e *Engine, s, nSrc, nVals int) error {
	tag := int(rr.Uint32())
	nObjs := int(rr.Uint32())
	if err := rr.Err(); err != nil {
		return fmt.Errorf("stream: restore: %w", err)
	}
	if tag != s {
		return fmt.Errorf("%w: record %d is tagged shard %d", ErrShardCount, s, tag)
	}
	if nObjs > maxCheckpointSlots {
		return corruptf("shard %d declares %d object slots", s, nObjs)
	}
	sh := &e.shards[s]
	sh.objs = make([]object, 0, min(nObjs, growSlots))
	for ix := 0; ix < nObjs; ix++ {
		// Bail as soon as the stream goes bad: with a sticky read error
		// every further record decodes as zeros, and a lying nObjs must
		// not keep appending slots until the declared count is reached.
		if err := rr.Err(); err != nil {
			return fmt.Errorf("stream: restore: %w", err)
		}
		sh.objs = append(sh.objs, object{})
		obj := &sh.objs[ix]
		if !rr.Bool() {
			obj.mapIx = -1
			obj.prev, obj.next = -1, -1
			continue
		}
		obj.live = true
		obj.name = rr.String()
		obj.epoch = rr.Int64()
		if version >= checkpointVersion {
			obj.changed = rr.Int64()
		}
		obj.prev = rr.Int()
		obj.next = rr.Int()
		obj.dirty = rr.Bool()
		nClaims := int(rr.Uint32())
		if err := rr.Err(); err != nil {
			return fmt.Errorf("stream: restore: %w", err)
		}
		if nClaims > maxCheckpointSlots {
			return corruptf("shard %d object %d declares %d claims", s, ix, nClaims)
		}
		obj.claims = make([]claim, 0, min(nClaims, growSlots))
		for i := 0; i < nClaims; i++ {
			if err := rr.Err(); err != nil {
				return fmt.Errorf("stream: restore: %w", err)
			}
			obj.claims = append(obj.claims, claim{
				src:     int32(rr.Uint32()),
				val:     int32(rr.Uint32()),
				settled: rr.Float64(),
			})
		}
		obj.domain = rr.Int32s()
		obj.refs = rr.Int32s()
		obj.scores = rr.Float64s()
		obj.post = rr.Float64s()
		if err := rr.Err(); err != nil {
			return fmt.Errorf("stream: restore: %w", err)
		}
		nd := len(obj.domain)
		if len(obj.refs) != nd || len(obj.scores) != nd || len(obj.post) != nd {
			return corruptf("shard %d object %q has ragged slabs: domain %d, refs %d, scores %d, post %d",
				s, obj.name, nd, len(obj.refs), len(obj.scores), len(obj.post))
		}
		for _, v := range obj.domain {
			if int(v) < 0 || int(v) >= nVals {
				return corruptf("shard %d object %q references value id %d of %d", s, obj.name, v, nVals)
			}
		}
		// The cached MAP index is derived state: recompute it from the
		// restored posterior (pre-v4 checkpoints additionally restore
		// with changed = 0, so "flipped since E" starts fresh).
		obj.mapIx = mapIndex(obj, e.vals.names)
		for i := range obj.claims {
			c := &obj.claims[i]
			if int(c.src) < 0 || int(c.src) >= nSrc {
				return corruptf("shard %d object %q claim references source id %d of %d", s, obj.name, c.src, nSrc)
			}
			if int(c.val) < 0 || int(c.val) >= nVals {
				return corruptf("shard %d object %q claim references value id %d of %d", s, obj.name, c.val, nVals)
			}
		}
		if obj.name == "" {
			return corruptf("shard %d slot %d is live with an empty name", s, ix)
		}
		if _, dup := sh.index[obj.name]; dup {
			return corruptf("shard %d has object %q twice", s, obj.name)
		}
		sh.index[obj.name] = ix
		sh.nLive++
	}
	sh.free = rr.Ints()
	sh.dirtyIx = rr.Ints()
	sh.lruHead = rr.Int()
	sh.lruTail = rr.Int()
	sh.deltaAgree = rr.Float64s()
	sh.deltaTotal = rr.Float64s()
	sh.obsCount = rr.Int64s()
	sh.evictedAgree = rr.Float64s()
	sh.evictedTotal = rr.Float64s()
	sh.evictedObjects = rr.Int64()
	sh.evictedClaims = rr.Int64()
	sh.evictedMass = rr.Float64()
	if err := rr.Err(); err != nil {
		return fmt.Errorf("stream: restore: %w", err)
	}
	inRange := func(ix int) bool { return ix >= -1 && ix < nObjs }
	for _, ix := range sh.free {
		if ix < 0 || ix >= nObjs || sh.objs[ix].live {
			return corruptf("shard %d free list entry %d is invalid", s, ix)
		}
	}
	for _, ix := range sh.dirtyIx {
		if ix < 0 || ix >= nObjs {
			return corruptf("shard %d dirty list entry %d out of range", s, ix)
		}
	}
	if !inRange(sh.lruHead) || !inRange(sh.lruTail) {
		return corruptf("shard %d LRU links out of range: head %d, tail %d", s, sh.lruHead, sh.lruTail)
	}
	for ix := range sh.objs {
		obj := &sh.objs[ix]
		if !inRange(obj.prev) || !inRange(obj.next) {
			return corruptf("shard %d object %d LRU links out of range: prev %d, next %d", s, ix, obj.prev, obj.next)
		}
	}
	nd := len(sh.deltaAgree)
	if len(sh.deltaTotal) != nd || len(sh.obsCount) != nd || len(sh.evictedAgree) != nd || len(sh.evictedTotal) != nd {
		return corruptf("shard %d per-source vectors are ragged: %d/%d/%d/%d/%d",
			s, nd, len(sh.deltaTotal), len(sh.obsCount), len(sh.evictedAgree), len(sh.evictedTotal))
	}
	if nd > nSrc {
		return corruptf("shard %d tracks %d sources, table has %d", s, nd, nSrc)
	}
	// The live engine grows the per-source vectors (ensureSource)
	// before any claim by that source lands, so drain() and evict()
	// index them by claim src without bounds checks. A checkpoint that
	// breaks the invariant must fail here, not panic at the next epoch
	// refresh.
	for ix := range sh.objs {
		obj := &sh.objs[ix]
		if !obj.live {
			continue
		}
		for i := range obj.claims {
			if int(obj.claims[i].src) >= nd {
				return corruptf("shard %d object %q claims source id %d but tracks only %d sources",
					s, obj.name, obj.claims[i].src, nd)
			}
		}
	}
	return nil
}

// WriteCheckpointFile atomically checkpoints to path: the bytes land
// in a temp file in the same directory and are renamed into place
// only after a successful sync, so a crash mid-write never clobbers
// the previous checkpoint.
func (e *Engine) WriteCheckpointFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = e.WriteCheckpoint(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	// Sync the directory too, or the rename itself may not survive a
	// power loss — the durability claim covers the directory entry,
	// not just the bytes. Strictly best-effort: filesystems that
	// refuse directory fsync (FUSE, network, overlay mounts) still
	// have a valid, fully-synced file in place, so their refusal must
	// not fail the checkpoint.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// RestoreFile restores an engine from a checkpoint file.
func RestoreFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: restore: %w", err)
	}
	defer f.Close()
	return Restore(f)
}
