package optim

import (
	"math"
	"testing"
)

// The allocation-regression tier for the optimizers: the dense
// stamp/touch-list Sparse accumulator exists so the per-step gradient
// loops allocate nothing, and the proximal-gradient solvers hoist
// their trial-gradient buffers out of the backtracking loop. A
// regression here means a map, a per-try make, or a growing slice
// crept back into a hot loop.

func TestSparseZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	s := NewSparseSized(64)
	out := make([]float64, 64)
	cycle := func() {
		for rep := 0; rep < 3; rep++ {
			s.Reset()
			for j := 0; j < 64; j += 3 {
				s.Add(j, float64(j))
				s.Add(j, 1) // second touch takes the accumulate branch
			}
			for i := 0; i < s.Len(); i++ {
				k, v := s.At(i)
				out[k] = v
			}
			s.Dense(out)
		}
	}
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("Sparse Reset/Add/At/Dense cycle allocates %.1f times, want 0", allocs)
	}
}

func TestSparseGrowsOnDemand(t *testing.T) {
	// The unsized constructor still works: coordinates beyond the
	// current capacity grow the slabs and stay correct.
	s := NewSparse()
	s.Add(5, 1.5)
	s.Add(2, 1)
	s.Add(5, 0.5)
	s.Reset()
	s.Add(1000, 3)
	s.Add(5, 7) // stale stamp from before Reset must not leak
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if j, v := s.At(0); j != 1000 || v != 3 {
		t.Errorf("At(0) = (%d, %v), want (1000, 3)", j, v)
	}
	if j, v := s.At(1); j != 5 || v != 7 {
		t.Errorf("At(1) = (%d, %v), want (5, 7)", j, v)
	}
}

// minimizeAllocs measures the total allocations of one Minimize call
// with the given epoch count over a fixed 200-example problem.
func minimizeAllocs(t *testing.T, cfg Config, epochs int) float64 {
	t.Helper()
	const n, dim = 200, 30
	cfg.Epochs = epochs
	cfg.Tolerance = 0 // never early-stop: every epoch must run
	grad := func(i int, w []float64, g *Sparse) {
		j := i % dim
		g.Add(j, w[j]-float64(i%7))
		g.Add((j+11)%dim, 0.25*w[(j+11)%dim])
	}
	w := make([]float64, dim)
	return testing.AllocsPerRun(10, func() {
		if _, err := Minimize(n, w, grad, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMinimizeSteadyStateZeroAlloc pins the dense accumulator's
// contract on both Minimize paths: all allocation happens in per-call
// setup (the accumulators, the shuffle order, the worker pool), so the
// allocation count is flat in the number of epochs — the per-step
// Reset/Add/At traffic through the accumulator allocates nothing.
func TestMinimizeSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"serial", Config{Method: SGD, LearningRate: 0.1, Seed: 1}},
		{"serial-adagrad-l1", Config{Method: AdaGrad, LearningRate: 0.1, L1: 1e-3, Seed: 1}},
		{"minibatch", Config{Method: SGD, LearningRate: 0.1, Seed: 1, Batch: 16, Workers: 1}},
		{"minibatch-workers4", Config{Method: SGD, LearningRate: 0.1, Seed: 1, Batch: 16, Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// With Workers > 1 each call spawns goroutines, and runtime
			// stack/scheduling allocations occasionally land inside the
			// measured window, jittering the difference by a few counts
			// either way. A real per-epoch regression is deterministic
			// and persists across trials, so retry the measurement and
			// only fail when no trial comes out flat.
			var short, long, extra float64
			for trial := 0; trial < 5; trial++ {
				short = minimizeAllocs(t, tc.cfg, 1)
				long = minimizeAllocs(t, tc.cfg, 11)
				if extra = long - short; extra == 0 {
					return
				}
			}
			t.Errorf("10 extra epochs allocated %.1f more times (1 epoch: %.1f, 11 epochs: %.1f), want 0 — the steady state must not allocate",
				extra, short, long)
		})
	}
}

// PathologicalSmooth builds a batch-gradient function whose loss turns
// NaN the moment any coordinate leaves a microscopic basin, while the
// gradient stays finite and enormous. Every quadratic-bound comparison
// against a NaN trial loss is false, so an uncapped backtracking loop
// halves lr ~40 times on every outer iteration and the step size can
// never recover through the 1.1× growth — the historical lasso bug.
// The lasso package carries a twin of this function for its
// proxL1ExceptFirst test (test files cannot be imported).
func PathologicalSmooth(calls *int) BatchGradFunc {
	return func(w []float64, grad []float64) float64 {
		*calls++
		loss := 0.0
		for j := range w {
			grad[j] = 2e30 * w[j]
			loss += 1e30 * w[j] * w[j]
		}
		if loss > 1e3 {
			return math.NaN()
		}
		return loss
	}
}

// TestProximalGradientBacktrackCapped drives ProximalGradient into
// PathologicalSmooth's NaN region: the solver must cap backtracking at
// 40 halvings per outer iteration, run to maxIter, and evaluate smooth
// a bounded number of times.
func TestProximalGradientBacktrackCapped(t *testing.T) {
	const maxIter = 5
	var calls int
	w := []float64{1e-14}
	res, err := ProximalGradient(w, PathologicalSmooth(&calls), 0, maxIter, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs < 1 || res.Epochs > maxIter {
		t.Errorf("ProximalGradient ran %d iters, want within [1, %d]", res.Epochs, maxIter)
	}
	// At most 41 trial evaluations per outer iteration (initial try +
	// 40 halvings) plus the one gradient evaluation at the start. An
	// uncapped loop keyed on lr alone either hangs or burns an
	// lr-dependent number of halvings here.
	if limit := res.Epochs*41 + 1; calls > limit {
		t.Errorf("ProximalGradient evaluated smooth %d times over %d iters, want <= %d (backtracking not capped)", calls, res.Epochs, limit)
	}
}
