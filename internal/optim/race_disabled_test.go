//go:build !race

package optim

const raceEnabled = false
