// Package optim provides the first-order optimizers used to fit
// SLiMFast's logistic-regression model: stochastic gradient descent
// (the algorithm the paper runs on DeepDive's sampler), AdaGrad as an
// ablation alternative, and a batch proximal-gradient loop used for the
// L1-regularized Lasso-path experiments.
//
// The optimizers minimize an empirical objective of the form
//
//	F(w) = (1/n) Σ_i f_i(w) + (λ2/2)||w||² + λ1||w||₁
//
// given only per-example gradient callbacks, so they are agnostic to the
// model structure.
package optim

import (
	"errors"
	"math"
	"sync"

	"slimfast/internal/mathx"
	"slimfast/internal/parallel"
	"slimfast/internal/randx"
)

// Method selects the update rule.
type Method int

const (
	// SGD is plain stochastic gradient descent with inverse-time decay.
	SGD Method = iota
	// AdaGrad scales each coordinate by the accumulated squared
	// gradients.
	AdaGrad
)

// Config controls an optimization run. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	Method       Method
	Epochs       int     // maximum passes over the data
	LearningRate float64 // initial step size
	Decay        float64 // inverse-time decay: lr_t = lr / (1 + Decay·t)
	L2           float64 // ridge penalty λ2
	L1           float64 // lasso penalty λ1 (applied proximally)
	Tolerance    float64 // early stop when max |Δw| over an epoch < Tolerance
	Seed         int64   // shuffle seed, for reproducibility

	// Batch switches Minimize to deterministic minibatch mode when > 1:
	// each shuffled epoch is consumed in consecutive batches of this
	// size, per-example gradients inside a batch are computed at the
	// frozen weights (concurrently across Workers), merged in
	// batch-position order, and applied by a single applier. Batch <= 1
	// keeps the per-example serial path. The trajectory depends only on
	// (Seed, Batch) — never on Workers — so results are bit-identical
	// for any worker count.
	Batch int

	// Workers bounds the goroutines used to compute a batch's gradient
	// shards; <= 0 means runtime.GOMAXPROCS(0). Ignored when Batch <= 1
	// (the serial path has no intra-step parallelism to exploit).
	Workers int

	// BatchStart, when set and Batch > 1, is called once per minibatch
	// with the frozen weight vector before the batch's gradient shards
	// are dispatched. Models use it to refresh caches that are pure
	// functions of the weights (SLiMFast's σ-table) exactly once per
	// weight freeze instead of per example. It runs on the applier
	// goroutine, ordered before the shard fan-out and after the
	// previous step's update, so implementations may mutate state the
	// gradient callbacks read. Ignored when Batch <= 1: the sequential
	// path updates weights every step, so there is no frozen phase to
	// cache against.
	BatchStart func(w []float64)
}

// DefaultConfig returns the settings used throughout the reproduction:
// they converge reliably on every dataset in the evaluation without
// per-dataset tuning.
func DefaultConfig() Config {
	return Config{
		Method:       SGD,
		Epochs:       50,
		LearningRate: 0.3,
		Decay:        0.01,
		Tolerance:    1e-4,
		Seed:         1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Epochs <= 0 {
		return errors.New("optim: Epochs must be positive")
	}
	if c.LearningRate <= 0 {
		return errors.New("optim: LearningRate must be positive")
	}
	if c.L1 < 0 || c.L2 < 0 {
		return errors.New("optim: penalties must be non-negative")
	}
	if c.Decay < 0 {
		return errors.New("optim: Decay must be non-negative")
	}
	if c.Batch < 0 {
		return errors.New("optim: Batch must be non-negative")
	}
	return nil
}

// Sparse accumulates a sparse gradient: per-example losses in data
// fusion touch only the weights of the sources and features involved in
// one object, so updates must not pay O(len(w)).
//
// The layout is a dense stamp/touch-list accumulator: val is a dense
// slab indexed by coordinate, stamp[j] records the Reset generation
// that last touched j, and idx lists the touched coordinates in
// first-touch order. Add and At are branch-plus-array-index — no map
// hashing, no per-coordinate allocation — and Reset is O(1) (bump the
// generation). The accumulator grows to the largest coordinate it has
// seen and is reused across steps, so the steady state allocates
// nothing; size it up front with NewSparseSized to avoid even the
// warm-up growth.
type Sparse struct {
	idx   []int
	val   []float64
	stamp []uint64
	gen   uint64
}

// NewSparse returns an empty accumulator that grows on first touch.
func NewSparse() *Sparse { return &Sparse{gen: 1} }

// NewSparseSized returns an accumulator pre-sized for coordinates
// [0, n), so no hot-path growth ever happens.
func NewSparseSized(n int) *Sparse {
	s := NewSparse()
	s.grow(n)
	return s
}

// grow extends the dense slabs to cover at least n coordinates.
func (s *Sparse) grow(n int) {
	if n <= len(s.val) {
		return
	}
	val := make([]float64, n)
	copy(val, s.val)
	s.val = val
	stamp := make([]uint64, n)
	copy(stamp, s.stamp)
	s.stamp = stamp
}

// Reset clears the accumulator for reuse.
func (s *Sparse) Reset() {
	s.idx = s.idx[:0]
	s.gen++
}

// Add accumulates v into coordinate j.
func (s *Sparse) Add(j int, v float64) {
	if j >= len(s.val) {
		s.grow(j + 1)
	}
	if s.stamp[j] == s.gen {
		s.val[j] += v
		return
	}
	s.stamp[j] = s.gen
	s.val[j] = v
	s.idx = append(s.idx, j)
}

// Len returns the number of touched coordinates.
func (s *Sparse) Len() int { return len(s.idx) }

// At returns the i-th touched (coordinate, value) pair in first-touch
// order.
func (s *Sparse) At(i int) (int, float64) {
	j := s.idx[i]
	return j, s.val[j]
}

// Dense writes the accumulated gradient into out (which must have
// enough length) and returns it; used by tests.
func (s *Sparse) Dense(out []float64) []float64 {
	for _, j := range s.idx {
		out[j] += s.val[j]
	}
	return out
}

// GradFunc computes the gradient of one example's loss f_i at w,
// accumulating into grad. Implementations should only touch the
// coordinates the example involves. When Config.Batch > 1 and
// Config.Workers allows concurrency, the function is called from
// multiple goroutines with distinct examples and distinct grad
// accumulators against frozen w, so it must not mutate shared state.
type GradFunc func(example int, w []float64, grad *Sparse)

// Result reports what an optimization run did.
type Result struct {
	Epochs    int     // epochs actually run
	Converged bool    // true when the tolerance stop fired
	LastDelta float64 // max |Δw| over the final epoch
}

// Minimize runs stochastic optimization over n examples, updating w in
// place, and returns run statistics. The examples are visited in a
// fresh random order each epoch.
//
// Regularization is applied lazily: a coordinate is penalized only on
// the steps whose example touches it. This is the standard
// sparse-data approximation — it keeps the per-step cost proportional
// to the example's support instead of len(w).
func Minimize(n int, w []float64, grad GradFunc, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if n == 0 {
		return Result{Converged: true}, nil
	}
	if cfg.Batch > 1 {
		return minimizeMinibatch(n, w, grad, cfg)
	}
	rng := randx.New(cfg.Seed)
	g := NewSparseSized(len(w))
	var accum []float64 // AdaGrad accumulator
	if cfg.Method == AdaGrad {
		accum = make([]float64, len(w))
	}
	prev := make([]float64, len(w))
	order := make([]int, n) // reused across epochs; same stream as Shuffled
	var res Result
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		copy(prev, w)
		rng.ShuffleRange(order)
		for _, i := range order {
			g.Reset()
			grad(i, w, g)
			lr := cfg.LearningRate / (1 + cfg.Decay*float64(step))
			step++
			for p := 0; p < g.Len(); p++ {
				j, gj := g.At(p)
				gj += cfg.L2 * w[j]
				eta := lr
				if cfg.Method == AdaGrad {
					accum[j] += gj * gj
					eta = cfg.LearningRate / (1e-8 + math.Sqrt(accum[j]))
				}
				w[j] -= eta * gj
				if cfg.L1 > 0 {
					w[j] = mathx.SoftThreshold(w[j], eta*cfg.L1)
				}
			}
		}
		res.Epochs = epoch + 1
		res.LastDelta = mathx.MaxAbsDiff(w, prev)
		if cfg.Tolerance > 0 && res.LastDelta < cfg.Tolerance {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// minimizeMinibatch is the Batch > 1 path of Minimize: deterministic
// minibatch SGD/AdaGrad with parallel gradient shards. Each shuffled
// epoch is consumed in consecutive batches; within a batch every
// example's sparse gradient is computed at the frozen weights into its
// own accumulator (examples spread over Workers goroutines), the
// shards are merged in batch-position order, and a single applier
// takes one mean-gradient step. Because shard ownership, merge order
// and application order depend only on the shuffle — not on scheduling
// — the trajectory is bit-identical for every worker count, which the
// race/determinism test tier asserts.
func minimizeMinibatch(n int, w []float64, grad GradFunc, cfg Config) (Result, error) {
	rng := randx.New(cfg.Seed)
	workers := parallel.Resolve(cfg.Workers)
	batch := cfg.Batch
	if batch > n {
		batch = n
	}
	// The shards are this fit's per-worker scratch: allocated once,
	// sized to the weight vector, and reused across every batch of
	// every epoch, so the gradient fan-out allocates nothing in steady
	// state.
	shards := make([]*Sparse, batch)
	for i := range shards {
		shards[i] = NewSparseSized(len(w))
	}

	// One long-lived worker pool for the whole fit: a fit makes
	// n/Batch dispatches per epoch, so spawning goroutines per batch
	// would pay pool setup comparable to the gradient work itself.
	// The main goroutine writes the batch state (order, base, w)
	// before the channel sends and reads the shards after wg.Wait(),
	// so the pool sees a frozen batch and the merge stays ordered.
	order := make([]int, n)
	base := 0
	var tasks chan parallel.Chunk
	var wg sync.WaitGroup
	if workers > 1 {
		tasks = make(chan parallel.Chunk)
		defer close(tasks)
		for i := 0; i < workers; i++ {
			go func() {
				for ch := range tasks {
					for p := ch.Lo; p < ch.Hi; p++ {
						shards[p].Reset()
						grad(order[base+p], w, shards[p])
					}
					wg.Done()
				}
			}()
		}
	}
	// Chunk boundaries depend only on the batch width, which takes at
	// most two values (full batches and the tail); precompute both so
	// the per-batch dispatch allocates nothing.
	fullChunks := parallel.Split(batch, workers)
	var tailChunks []parallel.Chunk
	if rem := n % batch; rem > 0 {
		tailChunks = parallel.Split(rem, workers)
	}
	gradBatch := func(lo, k int) {
		if workers > 1 && k > 1 {
			base = lo
			chunks := fullChunks
			if k != batch {
				chunks = tailChunks
			}
			wg.Add(len(chunks))
			for _, ch := range chunks {
				tasks <- ch
			}
			wg.Wait()
			return
		}
		for p := 0; p < k; p++ {
			shards[p].Reset()
			grad(order[lo+p], w, shards[p])
		}
	}

	merged := NewSparseSized(len(w))
	var accum []float64 // AdaGrad accumulator
	if cfg.Method == AdaGrad {
		accum = make([]float64, len(w))
	}
	prev := make([]float64, len(w))
	var res Result
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		copy(prev, w)
		rng.ShuffleRange(order)
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			k := hi - lo
			// The weights are frozen until this batch's update is
			// applied; let the model refresh its weight-derived caches
			// once per freeze.
			if cfg.BatchStart != nil {
				cfg.BatchStart(w)
			}
			gradBatch(lo, k)
			merged.Reset()
			for p := 0; p < k; p++ {
				s := shards[p]
				for q := 0; q < s.Len(); q++ {
					j, v := s.At(q)
					merged.Add(j, v)
				}
			}
			lr := cfg.LearningRate / (1 + cfg.Decay*float64(step))
			step++
			inv := 1 / float64(k)
			for p := 0; p < merged.Len(); p++ {
				j, gj := merged.At(p)
				gj = gj*inv + cfg.L2*w[j]
				eta := lr
				if cfg.Method == AdaGrad {
					accum[j] += gj * gj
					eta = cfg.LearningRate / (1e-8 + math.Sqrt(accum[j]))
				}
				w[j] -= eta * gj
				if cfg.L1 > 0 {
					w[j] = mathx.SoftThreshold(w[j], eta*cfg.L1)
				}
			}
		}
		res.Epochs = epoch + 1
		res.LastDelta = mathx.MaxAbsDiff(w, prev)
		if cfg.Tolerance > 0 && res.LastDelta < cfg.Tolerance {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// BatchGradFunc computes the full-batch gradient of the smooth part of
// the objective at w into grad (zeroed, len(w)) and returns the smooth
// loss value.
type BatchGradFunc func(w []float64, grad []float64) float64

// ProximalGradient minimizes smooth(w) + λ1||w||₁ with ISTA-style
// proximal gradient steps and backtracking line search. It is used for
// the Lasso path (Section 5.3.1), where a deterministic solution per
// penalty keeps the path smooth.
func ProximalGradient(w []float64, smooth BatchGradFunc, l1 float64, maxIter int, tol float64) (Result, error) {
	if maxIter <= 0 {
		return Result{}, errors.New("optim: maxIter must be positive")
	}
	if l1 < 0 {
		return Result{}, errors.New("optim: l1 must be non-negative")
	}
	// Two gradient buffers, allocated once and swapped: grad holds the
	// gradient at w, gNext receives the trial point's gradient during
	// backtracking. The old loop allocated a fresh gNext per
	// backtracking try and threw the trial gradient away, recomputing
	// it at the top of the next iteration — since smooth is a pure
	// function, the accepted trial's gradient IS the next iteration's
	// gradient, so the swap halves the smooth() calls and the hot loop
	// allocates nothing.
	grad := make([]float64, len(w))
	next := make([]float64, len(w))
	gNext := make([]float64, len(w))
	lr := 1.0
	var res Result
	loss := smooth(w, grad)
	for iter := 0; iter < maxIter; iter++ {
		// Backtracking: halve lr until the quadratic upper bound holds.
		var lossNext float64
		for try := 0; ; try++ {
			for j := range w {
				next[j] = mathx.SoftThreshold(w[j]-lr*grad[j], lr*l1)
			}
			for j := range gNext {
				gNext[j] = 0
			}
			lossNext = smooth(next, gNext)
			// Upper bound: loss + <grad, Δ> + ||Δ||²/(2lr)
			var lin, quad float64
			for j := range w {
				d := next[j] - w[j]
				lin += grad[j] * d
				quad += d * d
			}
			if lossNext <= loss+lin+quad/(2*lr)+1e-12 || try >= 40 {
				break
			}
			lr /= 2
		}
		delta := mathx.MaxAbsDiff(next, w)
		copy(w, next)
		grad, gNext = gNext, grad
		loss = lossNext
		res.Epochs = iter + 1
		res.LastDelta = delta
		if delta < tol {
			res.Converged = true
			return res, nil
		}
		// Gentle growth so the step size can recover after backtracks.
		lr *= 1.1
	}
	return res, nil
}
