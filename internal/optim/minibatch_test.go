package optim

import (
	"math"
	"testing"
)

// quadProblem is a strongly-convex test objective with minimum zero:
// example i pulls coordinates i%d and (i+1)%d toward per-coordinate
// targets, so neighbouring examples overlap and the merge order
// matters for exercising determinism.
func quadProblem(d int) (n int, grad GradFunc, loss func(w []float64) float64) {
	n = 4 * d
	target := func(j int) float64 { return math.Sin(float64(j) + 1) }
	grad = func(i int, w []float64, g *Sparse) {
		j1, j2 := i%d, (i+1)%d
		g.Add(j1, w[j1]-target(j1))
		g.Add(j2, 0.5*(w[j2]-target(j2)))
	}
	loss = func(w []float64) float64 {
		var s float64
		for i := 0; i < n; i++ {
			j1, j2 := i%d, (i+1)%d
			s += 0.5*(w[j1]-target(j1))*(w[j1]-target(j1)) + 0.25*(w[j2]-target(j2))*(w[j2]-target(j2))
		}
		return s / float64(n)
	}
	return n, grad, loss
}

func minibatchConfig(method Method, batch, workers int) Config {
	cfg := DefaultConfig()
	cfg.Method = method
	cfg.Epochs = 30
	cfg.Tolerance = 0 // run all epochs so trajectories are comparable
	cfg.Batch = batch
	cfg.Workers = workers
	return cfg
}

// TestMinibatchDeterministicAcrossWorkers is the optimizer's half of
// the determinism contract: with a fixed Batch, the trajectory must be
// bit-identical for every worker count (shards are merged in
// batch-position order before the single applier runs).
func TestMinibatchDeterministicAcrossWorkers(t *testing.T) {
	for _, method := range []Method{SGD, AdaGrad} {
		for _, batch := range []int{2, 8, 1000} {
			n, grad, _ := quadProblem(25)
			ref := make([]float64, 25)
			refRes, err := Minimize(n, ref, grad, minibatchConfig(method, batch, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				w := make([]float64, 25)
				res, err := Minimize(n, w, grad, minibatchConfig(method, batch, workers))
				if err != nil {
					t.Fatal(err)
				}
				if res != refRes {
					t.Fatalf("method=%v batch=%d workers=%d: run stats differ: %+v vs %+v",
						method, batch, workers, res, refRes)
				}
				for j := range w {
					if w[j] != ref[j] {
						t.Fatalf("method=%v batch=%d workers=%d: w[%d] = %v vs %v",
							method, batch, workers, j, w[j], ref[j])
					}
				}
			}
		}
	}
}

func TestMinibatchConverges(t *testing.T) {
	n, grad, loss := quadProblem(25)
	w := make([]float64, 25)
	start := loss(w)
	cfg := minibatchConfig(SGD, 8, 4)
	cfg.Epochs = 100
	if _, err := Minimize(n, w, grad, cfg); err != nil {
		t.Fatal(err)
	}
	if end := loss(w); end > start/10 {
		t.Errorf("minibatch mode failed to optimize: loss %v -> %v", start, end)
	}
}

func TestMinibatchRegularization(t *testing.T) {
	// L2 shrinks weights; L1 produces exact zeros on no-signal coords.
	n, grad, _ := quadProblem(10)
	plain := make([]float64, 10)
	if _, err := Minimize(n, plain, grad, minibatchConfig(SGD, 4, 2)); err != nil {
		t.Fatal(err)
	}
	cfg := minibatchConfig(SGD, 4, 2)
	cfg.L2 = 1.0
	ridge := make([]float64, 10)
	if _, err := Minimize(n, ridge, grad, cfg); err != nil {
		t.Fatal(err)
	}
	var normPlain, normRidge float64
	for j := range plain {
		normPlain += plain[j] * plain[j]
		normRidge += ridge[j] * ridge[j]
	}
	if normRidge >= normPlain {
		t.Errorf("L2 should shrink weights: %v vs %v", normRidge, normPlain)
	}
}

func TestBatchValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Batch = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Batch should be rejected")
	}
	// Batch larger than n degrades to full-batch gradient descent,
	// which should reach a stationary point: the mean gradient
	// vanishes.
	n, grad, _ := quadProblem(5)
	w := make([]float64, 5)
	cfg = minibatchConfig(SGD, 10*n, 4)
	cfg.Epochs = 500
	if _, err := Minimize(n, w, grad, cfg); err != nil {
		t.Fatal(err)
	}
	full := make([]float64, 5)
	for i := 0; i < n; i++ {
		g := NewSparse()
		grad(i, w, g)
		g.Dense(full)
	}
	for j := range full {
		if math.Abs(full[j])/float64(n) > 0.02 {
			t.Errorf("full-batch mode not stationary: mean grad[%d] = %v", j, full[j]/float64(n))
		}
	}
}

func TestSerialPathUnaffectedByWorkers(t *testing.T) {
	// Batch <= 1 must ignore Workers entirely: same trajectory as the
	// legacy config.
	n, grad, _ := quadProblem(12)
	a := make([]float64, 12)
	cfgA := DefaultConfig()
	if _, err := Minimize(n, a, grad, cfgA); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 12)
	cfgB := DefaultConfig()
	cfgB.Workers = 8
	if _, err := Minimize(n, b, grad, cfgB); err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("Workers changed the serial trajectory at coord %d", j)
		}
	}
}
