package optim

import (
	"math"
	"testing"

	"slimfast/internal/mathx"
)

// quadratic builds a per-example gradient for F(w) = mean_i (w - t_i)^2/2
// whose minimizer is mean(t).
func quadratic(targets []float64) GradFunc {
	return func(i int, w []float64, g *Sparse) {
		for j := range w {
			g.Add(j, w[j]-targets[i])
		}
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	targets := []float64{1, 2, 3, 4, 5}
	w := []float64{10}
	cfg := DefaultConfig()
	cfg.Epochs = 400
	cfg.LearningRate = 0.1
	res, err := Minimize(len(targets), w, quadratic(targets), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-3) > 0.1 {
		t.Errorf("w = %v, want ~3 (res %+v)", w[0], res)
	}
}

func TestMinimizeAdaGrad(t *testing.T) {
	targets := []float64{-2, -2, -2, -2}
	w := []float64{5}
	cfg := DefaultConfig()
	cfg.Method = AdaGrad
	cfg.Epochs = 500
	cfg.LearningRate = 1.0
	if _, err := Minimize(len(targets), w, quadratic(targets), cfg); err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-(-2)) > 0.1 {
		t.Errorf("AdaGrad w = %v, want ~-2", w[0])
	}
}

func TestMinimizeL2ShrinksTowardZero(t *testing.T) {
	targets := []float64{4, 4, 4, 4}
	w := []float64{0}
	cfg := DefaultConfig()
	cfg.Epochs = 500
	cfg.LearningRate = 0.1
	cfg.L2 = 1.0
	if _, err := Minimize(len(targets), w, quadratic(targets), cfg); err != nil {
		t.Fatal(err)
	}
	// Minimizer of (w-4)^2/2 + w^2/2 is 2.
	if math.Abs(w[0]-2) > 0.1 {
		t.Errorf("ridge solution = %v, want ~2", w[0])
	}
}

func TestMinimizeL1SparsifiesIrrelevantCoord(t *testing.T) {
	// Coordinate 0 carries signal; coordinate 1 is touched with zero
	// gradient, so the (lazy) L1 prox should shrink it to zero.
	grad := func(i int, w []float64, g *Sparse) {
		g.Add(0, w[0]-3)
		g.Add(1, 0)
	}
	w := []float64{0, 0.5}
	cfg := DefaultConfig()
	cfg.Epochs = 300
	cfg.LearningRate = 0.1
	cfg.L1 = 0.05
	if _, err := Minimize(10, w, grad, cfg); err != nil {
		t.Fatal(err)
	}
	if w[1] != 0 {
		t.Errorf("L1 should zero the unused coordinate, got %v", w[1])
	}
	if math.Abs(w[0]-3) > 0.6 {
		t.Errorf("active coordinate = %v, want near 3", w[0])
	}
}

func TestMinimizeConvergenceFlag(t *testing.T) {
	targets := []float64{1, 1}
	w := []float64{1} // already at optimum
	cfg := DefaultConfig()
	cfg.Tolerance = 1e-6
	res, err := Minimize(len(targets), w, quadratic(targets), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("should converge immediately: %+v", res)
	}
	if res.Epochs > 2 {
		t.Errorf("too many epochs: %d", res.Epochs)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	targets := []float64{1, 5, 9}
	run := func() float64 {
		w := []float64{0}
		cfg := DefaultConfig()
		cfg.Epochs = 10
		cfg.Tolerance = 0 // force all epochs
		_, _ = Minimize(len(targets), w, quadratic(targets), cfg)
		return w[0]
	}
	if run() != run() {
		t.Error("same seed must give identical trajectories")
	}
}

func TestMinimizeZeroExamples(t *testing.T) {
	w := []float64{7}
	res, err := Minimize(0, w, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || w[0] != 7 {
		t.Error("zero examples should be a converged no-op")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Epochs: 0, LearningRate: 1},
		{Epochs: 1, LearningRate: 0},
		{Epochs: 1, LearningRate: 1, L1: -1},
		{Epochs: 1, LearningRate: 1, L2: -1},
		{Epochs: 1, LearningRate: 1, Decay: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// logisticSmooth returns the batch gradient function for a tiny
// 1-feature logistic regression with targets y in {0,1}.
func logisticSmooth(xs []float64, ys []int) BatchGradFunc {
	return func(w, grad []float64) float64 {
		var loss float64
		n := float64(len(xs))
		for i, x := range xs {
			p := mathx.Logistic(w[0] * x)
			y := float64(ys[i])
			loss += -(y*math.Log(mathx.ClampProb(p)) + (1-y)*math.Log(mathx.ClampProb(1-p)))
			grad[0] += (p - y) * x / n
		}
		return loss / n
	}
}

func TestProximalGradientLogistic(t *testing.T) {
	xs := []float64{1, 1, 1, 1, -1, -1, -1, -1}
	ys := []int{1, 1, 1, 0, 0, 0, 0, 1}
	w := []float64{0}
	res, err := ProximalGradient(w, logisticSmooth(xs, ys), 0, 500, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	// 6/8 agreement: optimum w satisfies logistic(w) = 0.75, w = log 3.
	if math.Abs(w[0]-math.Log(3)) > 1e-3 {
		t.Errorf("w = %v, want log 3 ~= 1.0986 (res %+v)", w[0], res)
	}
}

func TestProximalGradientL1KillsWeakSignal(t *testing.T) {
	xs := []float64{1, 1, -1, -1}
	ys := []int{1, 0, 0, 1} // no signal at all
	w := []float64{2}
	if _, err := ProximalGradient(w, logisticSmooth(xs, ys), 0.5, 500, 1e-10); err != nil {
		t.Fatal(err)
	}
	if w[0] != 0 {
		t.Errorf("strong L1 on pure noise should zero the weight, got %v", w[0])
	}
}

func TestProximalGradientErrors(t *testing.T) {
	if _, err := ProximalGradient([]float64{0}, nil, 0, 0, 1e-6); err == nil {
		t.Error("maxIter=0 should error")
	}
	if _, err := ProximalGradient([]float64{0}, nil, -1, 10, 1e-6); err == nil {
		t.Error("negative l1 should error")
	}
}

func TestProximalGradientMonotoneLoss(t *testing.T) {
	xs := []float64{2, 1, -1, -2, 0.5, -0.5}
	ys := []int{1, 1, 0, 0, 1, 0}
	w := []float64{0}
	sm := logisticSmooth(xs, ys)
	g := make([]float64, 1)
	prevLoss := sm(w, g)
	for i := 0; i < 20; i++ {
		if _, err := ProximalGradient(w, sm, 0, 1, 0); err != nil {
			t.Fatal(err)
		}
		for j := range g {
			g[j] = 0
		}
		loss := sm(w, g)
		if loss > prevLoss+1e-9 {
			t.Fatalf("loss increased at iter %d: %v -> %v", i, prevLoss, loss)
		}
		prevLoss = loss
	}
}
