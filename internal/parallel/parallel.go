// Package parallel provides the small worker-pool primitives that
// SLiMFast's hot paths (the EM E-step, exact inference, per-example
// gradient shards, experiment replication) use to scale with cores
// while staying deterministic.
//
// Determinism is the design constraint. The side-effect runners (Do,
// For, DoErr) require callbacks to write only index-owned slots, so
// their results are bit-identical for any worker count regardless of
// chunking — which frees their layout to adapt to the worker count
// (at least one chunk per worker, ~chunkTarget-wide chunks on large
// index spaces). The ordered reductions (MapChunks, Sum) instead fix
// their chunk boundaries as a function of the problem size alone and
// combine per-chunk results in chunk order, so floating-point
// reductions are bit-identical for any worker count > 1 (and within
// rounding noise of the single-stream serial order).
//
// Workers <= 0 means runtime.GOMAXPROCS(0). Workers == 1 runs inline
// on the calling goroutine with no pool overhead, preserving the exact
// legacy serial behavior of the call site.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Resolve maps a user-facing worker count to an effective one:
// anything <= 0 selects runtime.GOMAXPROCS(0).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Chunk is a half-open index range [Lo, Hi).
type Chunk struct{ Lo, Hi int }

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// chunkTarget is the partition width the primitives aim for when
// running in parallel over fine-grained index spaces (objects,
// examples). Reduction layouts derive their boundaries only from n and
// this constant, so reductions associate identically no matter how
// many workers drain the chunk queue.
const chunkTarget = 64

// Split partitions [0, n) into at most parts contiguous near-equal
// chunks (fewer when n < parts). parts <= 0 yields a single chunk.
func Split(n, parts int) []Chunk {
	if n <= 0 {
		return nil
	}
	if parts <= 1 || n == 1 {
		return []Chunk{{0, n}}
	}
	if parts > n {
		parts = n
	}
	chunks := make([]Chunk, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if lo < hi {
			chunks = append(chunks, Chunk{lo, hi})
		}
	}
	return chunks
}

// scatterLayout chunks [0, n) for the side-effect runners (Do, For,
// DoErr), whose callbacks write index-owned slots: chunk boundaries
// cannot influence results there, so the layout is free to adapt to
// the worker count. It guarantees at least one chunk per worker (so a
// 4-seed replication with 4 workers actually fans out) while keeping
// chunks at most ~chunkTarget wide on large index spaces for load
// balancing. One worker gets the single serial chunk.
func scatterLayout(n, workers int) []Chunk {
	w := Resolve(workers)
	if w <= 1 {
		return Split(n, 1)
	}
	parts := (n + chunkTarget - 1) / chunkTarget
	if parts < w {
		parts = w
	}
	return Split(n, parts)
}

// reduceLayout chunks [0, n) for the ordered reductions (MapChunks,
// Sum): boundaries depend only on n, never on the worker count, so the
// reduction associates identically for every workers > 1. One worker
// gets the single serial chunk — the exact legacy summation order.
func reduceLayout(n, workers int) []Chunk {
	if Resolve(workers) <= 1 {
		return Split(n, 1)
	}
	parts := (n + chunkTarget - 1) / chunkTarget
	return Split(n, parts)
}

// run drains the chunk list with up to workers goroutines, calling
// fn(chunkIndex, chunk) for each. With one worker (or one chunk) it
// runs inline. The per-chunk errors are collected and the error of the
// lowest-indexed failing chunk is returned, so the reported error does
// not depend on scheduling. A canceled ctx stops workers from starting
// new chunks and is reported as ctx.Err() when no chunk failed first.
func run(ctx context.Context, chunks []Chunk, workers int, fn func(c int, ch Chunk) error) error {
	if len(chunks) == 0 {
		return nil
	}
	w := Resolve(workers)
	if w > len(chunks) {
		w = len(chunks)
	}
	if w <= 1 {
		for c, ch := range chunks {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := fn(c, ch); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(chunks))
	next := make(chan int)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for c := range next {
				if ctx != nil && ctx.Err() != nil {
					errs[c] = ctx.Err()
					continue
				}
				errs[c] = fn(c, chunks[c])
			}
		}()
	}
	go func() {
		defer close(next)
		for c := range chunks {
			select {
			case next <- c:
			case <-done:
				return
			}
		}
	}()
	wg.Wait()
	close(done)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Do runs fn over the deterministic chunking of [0, n) with up to
// workers goroutines. fn must only write state owned by indices inside
// its chunk. With workers resolving to 1 the single chunk [0, n) runs
// inline — the exact legacy serial path.
func Do(n, workers int, fn func(ch Chunk)) {
	_ = run(nil, scatterLayout(n, workers), workers, func(_ int, ch Chunk) error {
		fn(ch)
		return nil
	})
}

// DoErr is Do with error propagation and context cancellation: the
// first error (by chunk index) is returned, and a canceled ctx stops
// unstarted chunks.
func DoErr(ctx context.Context, n, workers int, fn func(ch Chunk) error) error {
	return run(ctx, scatterLayout(n, workers), workers, func(_ int, ch Chunk) error {
		return fn(ch)
	})
}

// For runs fn(i) for every i in [0, n) with up to workers goroutines,
// chunked as in Do.
func For(n, workers int, fn func(i int)) {
	Do(n, workers, func(ch Chunk) {
		for i := ch.Lo; i < ch.Hi; i++ {
			fn(i)
		}
	})
}

// Map computes fn(i) for every i in [0, n) with up to workers
// goroutines and returns the results in index order. Each result slot
// is owned by its index, so the output is deterministic for any worker
// count and any chunking. Unlike MapChunks — whose chunk layout targets
// fine-grained index spaces and collapses small n into a single chunk —
// Map fans out even for small n (one chunk per worker at least), which
// makes it the right primitive for coarse-grained per-shard or
// per-partition work.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	Do(n, workers, func(ch Chunk) {
		for i := ch.Lo; i < ch.Hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// MapChunks computes fn per chunk and returns the per-chunk results in
// chunk order — the deterministic ordered reduction the callers fold
// over.
func MapChunks[T any](n, workers int, fn func(ch Chunk) T) []T {
	chunks := reduceLayout(n, workers)
	out := make([]T, len(chunks))
	_ = run(nil, chunks, workers, func(c int, ch Chunk) error {
		out[c] = fn(ch)
		return nil
	})
	return out
}

// Sum evaluates fn per chunk and adds the partial results in chunk
// order. Because the chunk layout depends only on n, the result is
// bit-identical for every workers > 1, and equals the serial
// single-stream sum when workers resolves to 1.
func Sum(n, workers int, fn func(ch Chunk) float64) float64 {
	var total float64
	for _, part := range MapChunks(n, workers, fn) {
		total += part
	}
	return total
}
