package parallel

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	for _, n := range []int{1, 2, 7} {
		if got := Resolve(n); got != n {
			t.Errorf("Resolve(%d) = %d", n, got)
		}
	}
}

func TestSplitCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {5, 2}, {10, 3}, {10, 10}, {10, 50}, {100, 7}, {64, 1}, {3, 0},
	} {
		chunks := Split(tc.n, tc.parts)
		covered := 0
		prev := 0
		for _, ch := range chunks {
			if ch.Lo != prev {
				t.Fatalf("Split(%d,%d): gap at %d (chunks %v)", tc.n, tc.parts, ch.Lo, chunks)
			}
			if ch.Len() <= 0 {
				t.Fatalf("Split(%d,%d): empty chunk %v", tc.n, tc.parts, ch)
			}
			covered += ch.Len()
			prev = ch.Hi
		}
		if covered != tc.n {
			t.Fatalf("Split(%d,%d) covers %d indices", tc.n, tc.parts, covered)
		}
		if tc.parts > 0 && len(chunks) > tc.parts {
			t.Fatalf("Split(%d,%d) produced %d chunks", tc.n, tc.parts, len(chunks))
		}
	}
}

func TestReduceLayoutIndependentOfWorkerCount(t *testing.T) {
	// The reduction chunk boundaries must depend only on n so that
	// ordered reductions are bit-identical for any worker count > 1.
	for _, n := range []int{1, 63, 64, 65, 1000} {
		ref := reduceLayout(n, 2)
		for _, w := range []int{3, 4, 16} {
			got := reduceLayout(n, w)
			if len(got) != len(ref) {
				t.Fatalf("n=%d: layout differs between 2 and %d workers", n, w)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("n=%d chunk %d: %v vs %v", n, i, got[i], ref[i])
				}
			}
		}
	}
	// Workers==1 must be the single serial chunk.
	if got := reduceLayout(1000, 1); len(got) != 1 || got[0] != (Chunk{0, 1000}) {
		t.Fatalf("reduceLayout(1000, 1) = %v, want one full chunk", got)
	}
}

func TestScatterLayoutFansOutSmallN(t *testing.T) {
	// Coarse-grained loops (a handful of seeds or table rows) must
	// still get one chunk per worker, or the fan-out is a no-op.
	for _, tc := range []struct{ n, workers, wantChunks int }{
		{4, 4, 4},     // seed replication
		{3, 8, 3},     // fewer items than workers
		{28, 4, 4},    // quick-mode table cells
		{32, 4, 4},    // minibatch shards at Batch=32
		{1000, 4, 16}, // large n falls back to ~chunkTarget width
	} {
		got := scatterLayout(tc.n, tc.workers)
		if len(got) != tc.wantChunks {
			t.Errorf("scatterLayout(%d, %d) made %d chunks, want %d",
				tc.n, tc.workers, len(got), tc.wantChunks)
		}
	}
	if got := scatterLayout(1000, 1); len(got) != 1 {
		t.Errorf("one worker should get the single serial chunk, got %d", len(got))
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		n := 513
		visits := make([]int32, n)
		For(n, w, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, v)
			}
		}
	}
}

func TestSumDeterministicAcrossWorkers(t *testing.T) {
	n := 10000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i)) * 1e-3
	}
	chunkSum := func(ch Chunk) float64 {
		var s float64
		for i := ch.Lo; i < ch.Hi; i++ {
			s += vals[i]
		}
		return s
	}
	serial := Sum(n, 1, chunkSum)
	ref := Sum(n, 2, chunkSum)
	for _, w := range []int{2, 3, 8} {
		for rep := 0; rep < 5; rep++ {
			if got := Sum(n, w, chunkSum); got != ref {
				t.Fatalf("workers=%d rep=%d: sum %v != %v", w, rep, got, ref)
			}
		}
	}
	if math.Abs(serial-ref) > 1e-12 {
		t.Fatalf("serial %v and chunked %v sums too far apart", serial, ref)
	}
}

func TestMapChunksOrdered(t *testing.T) {
	n := 300
	parts := MapChunks(n, 4, func(ch Chunk) Chunk { return ch })
	prev := 0
	for _, ch := range parts {
		if ch.Lo != prev {
			t.Fatalf("chunks out of order: %v", parts)
		}
		prev = ch.Hi
	}
	if prev != n {
		t.Fatalf("chunks cover %d of %d", prev, n)
	}
}

func TestDoErrReturnsLowestChunkError(t *testing.T) {
	errBoom := errors.New("boom")
	for _, w := range []int{1, 4} {
		err := DoErr(context.Background(), 1000, w, func(ch Chunk) error {
			for i := ch.Lo; i < ch.Hi; i++ {
				if i >= 128 {
					return errBoom
				}
			}
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: err = %v, want boom", w, err)
		}
	}
}

func TestDoErrContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	err := DoErr(ctx, 10000, 2, func(ch Chunk) error {
		if atomic.AddInt32(&started, 1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); int(n) >= len(scatterLayout(10000, 2)) {
		t.Errorf("cancellation did not stop chunk dispatch: %d chunks ran", n)
	}
}

func TestEmptyRanges(t *testing.T) {
	called := false
	Do(0, 4, func(Chunk) { called = true })
	For(0, 4, func(int) { called = true })
	if called {
		t.Error("n=0 should not invoke fn")
	}
	if got := Sum(0, 4, func(Chunk) float64 { return 1 }); got != 0 {
		t.Errorf("Sum over empty range = %v", got)
	}
	if err := DoErr(context.Background(), 0, 4, func(Chunk) error { return errors.New("x") }); err != nil {
		t.Errorf("DoErr over empty range = %v", err)
	}
}

func TestMapIndexOrderedAcrossWorkers(t *testing.T) {
	const n = 11 // deliberately small: Map must still fan out
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 4, 16} {
		got := Map(n, workers, func(i int) int { return i * i })
		if len(got) != n {
			t.Fatalf("workers=%d: len = %d, want %d", workers, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: Map[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
	if out := Map(0, 4, func(i int) int { return i }); out != nil {
		t.Errorf("Map over empty range = %v, want nil", out)
	}
}

func TestMapRunsConcurrently(t *testing.T) {
	var calls atomic.Int64
	Map(8, 4, func(i int) int {
		calls.Add(1)
		return i
	})
	if calls.Load() != 8 {
		t.Errorf("Map invoked fn %d times, want 8", calls.Load())
	}
}
