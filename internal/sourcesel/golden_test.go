package sourcesel

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"slimfast/internal/data"
)

// goldenSelectFingerprint was recorded from the slice-rebuilding greedy
// loop (after the 0.5-baseline bugfix, before the incremental
// mean/variance layout). The incremental accumulator must buy the same
// sources in the same order and report bit-identical SpentCost and
// ExpectedAccuracy: any drift means the rewrite changed the margin
// arithmetic, not just the allocation pattern.
const goldenSelectFingerprint uint64 = 0xefbde19ceb703ad7

// goldenCandidates builds a deterministic 40-source shelf with varied
// accuracy (including worse-than-random ones), coverage and cost.
func goldenCandidates() []Candidate {
	out := make([]Candidate, 40)
	for i := range out {
		out[i] = Candidate{
			Source:   data.SourceID(i),
			Accuracy: 0.25 + 0.7*float64(i%13)/12,
			Coverage: 0.3 + 0.7*float64(i%7)/6,
			Cost:     1 + float64(i%5),
		}
	}
	return out
}

func TestSelectGoldenFingerprint(t *testing.T) {
	h := fnv.New64a()
	var b8 [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(b8[:], u)
		h.Write(b8[:])
	}
	for _, budget := range []float64{1, 3, 7.5, 20, 1000} {
		sel, err := Select(goldenCandidates(), budget)
		if err != nil {
			t.Fatal(err)
		}
		put(uint64(len(sel.Sources)))
		for _, s := range sel.Sources {
			put(uint64(int64(s)))
		}
		put(math.Float64bits(sel.SpentCost))
		put(math.Float64bits(sel.ExpectedAccuracy))
	}
	if got := h.Sum64(); got != goldenSelectFingerprint {
		t.Errorf("selection fingerprint = %#x, want %#x (the greedy arithmetic changed, not just its layout)", got, goldenSelectFingerprint)
	}
}
