package sourcesel

import (
	"testing"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/synth"
)

func candidates(accs, covs, costs []float64) []Candidate {
	out := make([]Candidate, len(accs))
	for i := range accs {
		out[i] = Candidate{
			Source: data.SourceID(i), Accuracy: accs[i],
			Coverage: covs[i], Cost: costs[i],
		}
	}
	return out
}

func TestSelectPrefersAccurateSources(t *testing.T) {
	cands := candidates(
		[]float64{0.95, 0.55, 0.9, 0.5},
		[]float64{1, 1, 1, 1},
		[]float64{1, 1, 1, 1},
	)
	sel, err := Select(cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Sources) != 2 {
		t.Fatalf("selected %d sources, want 2", len(sel.Sources))
	}
	want := map[data.SourceID]bool{0: true, 2: true}
	for _, s := range sel.Sources {
		if !want[s] {
			t.Errorf("selected %d; want the two accurate sources", s)
		}
	}
	if sel.SpentCost != 2 {
		t.Errorf("spent = %v", sel.SpentCost)
	}
	if sel.ExpectedAccuracy < 0.9 {
		t.Errorf("expected accuracy = %v, want >= 0.9", sel.ExpectedAccuracy)
	}
}

func TestSelectRespectsBudgetAndCosts(t *testing.T) {
	// A superb but expensive source vs several cheap decent ones.
	cands := candidates(
		[]float64{0.97, 0.8, 0.8, 0.8},
		[]float64{1, 1, 1, 1},
		[]float64{10, 1, 1, 1},
	)
	sel, err := Select(cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sel.SpentCost > 3 {
		t.Fatalf("budget exceeded: %v", sel.SpentCost)
	}
	// The expensive source cannot fit; the three cheap ones should.
	if len(sel.Sources) != 3 {
		t.Errorf("selected %v, want the 3 affordable sources", sel.Sources)
	}
}

func TestSelectValidation(t *testing.T) {
	good := candidates([]float64{0.8}, []float64{1}, []float64{1})
	if _, err := Select(good, 0); err == nil {
		t.Error("zero budget should error")
	}
	bad := candidates([]float64{0.8}, []float64{1}, []float64{0})
	if _, err := Select(bad, 1); err == nil {
		t.Error("zero cost should error")
	}
	bad = candidates([]float64{1.5}, []float64{1}, []float64{1})
	if _, err := Select(bad, 1); err == nil {
		t.Error("accuracy > 1 should error")
	}
	bad = candidates([]float64{0.8}, []float64{2}, []float64{1})
	if _, err := Select(bad, 1); err == nil {
		t.Error("coverage > 1 should error")
	}
}

func TestSelectMonotoneInBudget(t *testing.T) {
	cands := candidates(
		[]float64{0.9, 0.85, 0.8, 0.75, 0.7},
		[]float64{0.8, 0.8, 0.8, 0.8, 0.8},
		[]float64{1, 1, 1, 1, 1},
	)
	prev := 0.0
	for _, budget := range []float64{1, 2, 3, 5} {
		sel, err := Select(cands, budget)
		if err != nil {
			t.Fatal(err)
		}
		if sel.ExpectedAccuracy+1e-9 < prev {
			t.Fatalf("expected accuracy fell with bigger budget: %v -> %v", prev, sel.ExpectedAccuracy)
		}
		prev = sel.ExpectedAccuracy
	}
}

func TestSelectSkipsWorseThanChanceWhenPossible(t *testing.T) {
	// Sub-0.5 sources have negative expected margin contribution; with
	// good sources available they should be left on the shelf.
	cands := candidates(
		[]float64{0.9, 0.2, 0.85},
		[]float64{1, 1, 1},
		[]float64{1, 1, 1},
	)
	sel, err := Select(cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sel.Sources {
		if s == 1 {
			t.Error("the 0.2-accuracy source should not be bought")
		}
	}
}

func TestSelectNeverBuysWorseThanRandom(t *testing.T) {
	// Regression: the greedy baseline used to be expected accuracy 0
	// for the empty selection, so a lone worse-than-random candidate
	// showed positive gain and was purchased, and the returned
	// ExpectedAccuracy (~0.33) sat below the coin-flip baseline. The
	// baseline is 0.5: a sub-0.5-accuracy source must never be bought,
	// even when it is the only candidate and the budget allows it.
	sel, err := Select(candidates(
		[]float64{0.3},
		[]float64{1},
		[]float64{1},
	), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Sources) != 0 {
		t.Fatalf("bought sources %v; a 0.3-accuracy source must never be bought", sel.Sources)
	}
	if sel.SpentCost != 0 {
		t.Errorf("spent %v on an empty selection", sel.SpentCost)
	}
	if sel.ExpectedAccuracy != 0.5 {
		t.Errorf("empty selection ExpectedAccuracy = %v, want the 0.5 coin-flip baseline", sel.ExpectedAccuracy)
	}

	// Mixed shelf: the good sources are bought, every sub-0.5 source is
	// left behind, and the selection's expected accuracy clears 0.5.
	sel, err = Select(candidates(
		[]float64{0.3, 0.8, 0.45, 0.75, 0.1},
		[]float64{1, 0.9, 1, 0.8, 1},
		[]float64{1, 1, 1, 1, 1},
	), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Sources) == 0 {
		t.Fatal("the accurate sources should be bought")
	}
	for _, s := range sel.Sources {
		if s == 0 || s == 2 || s == 4 {
			t.Errorf("bought worse-than-random source %d", s)
		}
	}
	if sel.ExpectedAccuracy < 0.5 {
		t.Errorf("non-empty selection ExpectedAccuracy = %v, want >= 0.5", sel.ExpectedAccuracy)
	}
}

func TestEndToEndWithSLiMFastEstimates(t *testing.T) {
	// Estimate accuracies with unsupervised EM, select half the budget,
	// and verify fusing only the chosen sources stays close to fusing
	// everything.
	inst, err := synth.Generate(synth.Config{
		Name: "sel", Sources: 40, Objects: 400, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.3,
		MeanAccuracy: 0.68, AccuracySD: 0.15, MinAccuracy: 0.4, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 301,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Compile(inst.Dataset, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitEM(nil); err != nil {
		t.Fatal(err)
	}
	cands := CandidatesFromEstimates(inst.Dataset, m.SourceAccuracies(), 1)
	sel, err := Select(cands, 20) // half the sources
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Sources) == 0 || len(sel.Sources) > 20 {
		t.Fatalf("selected %d sources", len(sel.Sources))
	}
	sub, _, err := data.RestrictSources(inst.Dataset, sel.Sources)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := core.Compile(sub, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m2.Fuse(core.AlgorithmEM, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Score only objects still observed.
	gold := data.TruthMap{}
	for o, v := range inst.Gold {
		if len(sub.Domain(o)) > 0 {
			gold[o] = v
		}
	}
	acc := metrics.ObjectAccuracy(res.Values, gold)
	if acc < 0.9 {
		t.Errorf("fusing the selected half = %.3f accuracy, want >= 0.9", acc)
	}
}
