package sourcesel

import (
	"testing"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/synth"
)

func candidates(accs, covs, costs []float64) []Candidate {
	out := make([]Candidate, len(accs))
	for i := range accs {
		out[i] = Candidate{
			Source: data.SourceID(i), Accuracy: accs[i],
			Coverage: covs[i], Cost: costs[i],
		}
	}
	return out
}

func TestSelectPrefersAccurateSources(t *testing.T) {
	cands := candidates(
		[]float64{0.95, 0.55, 0.9, 0.5},
		[]float64{1, 1, 1, 1},
		[]float64{1, 1, 1, 1},
	)
	sel, err := Select(cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Sources) != 2 {
		t.Fatalf("selected %d sources, want 2", len(sel.Sources))
	}
	want := map[data.SourceID]bool{0: true, 2: true}
	for _, s := range sel.Sources {
		if !want[s] {
			t.Errorf("selected %d; want the two accurate sources", s)
		}
	}
	if sel.SpentCost != 2 {
		t.Errorf("spent = %v", sel.SpentCost)
	}
	if sel.ExpectedAccuracy < 0.9 {
		t.Errorf("expected accuracy = %v, want >= 0.9", sel.ExpectedAccuracy)
	}
}

func TestSelectRespectsBudgetAndCosts(t *testing.T) {
	// A superb but expensive source vs several cheap decent ones.
	cands := candidates(
		[]float64{0.97, 0.8, 0.8, 0.8},
		[]float64{1, 1, 1, 1},
		[]float64{10, 1, 1, 1},
	)
	sel, err := Select(cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sel.SpentCost > 3 {
		t.Fatalf("budget exceeded: %v", sel.SpentCost)
	}
	// The expensive source cannot fit; the three cheap ones should.
	if len(sel.Sources) != 3 {
		t.Errorf("selected %v, want the 3 affordable sources", sel.Sources)
	}
}

func TestSelectValidation(t *testing.T) {
	good := candidates([]float64{0.8}, []float64{1}, []float64{1})
	if _, err := Select(good, 0); err == nil {
		t.Error("zero budget should error")
	}
	bad := candidates([]float64{0.8}, []float64{1}, []float64{0})
	if _, err := Select(bad, 1); err == nil {
		t.Error("zero cost should error")
	}
	bad = candidates([]float64{1.5}, []float64{1}, []float64{1})
	if _, err := Select(bad, 1); err == nil {
		t.Error("accuracy > 1 should error")
	}
	bad = candidates([]float64{0.8}, []float64{2}, []float64{1})
	if _, err := Select(bad, 1); err == nil {
		t.Error("coverage > 1 should error")
	}
}

func TestSelectMonotoneInBudget(t *testing.T) {
	cands := candidates(
		[]float64{0.9, 0.85, 0.8, 0.75, 0.7},
		[]float64{0.8, 0.8, 0.8, 0.8, 0.8},
		[]float64{1, 1, 1, 1, 1},
	)
	prev := 0.0
	for _, budget := range []float64{1, 2, 3, 5} {
		sel, err := Select(cands, budget)
		if err != nil {
			t.Fatal(err)
		}
		if sel.ExpectedAccuracy+1e-9 < prev {
			t.Fatalf("expected accuracy fell with bigger budget: %v -> %v", prev, sel.ExpectedAccuracy)
		}
		prev = sel.ExpectedAccuracy
	}
}

func TestSelectSkipsWorseThanChanceWhenPossible(t *testing.T) {
	// Sub-0.5 sources have negative expected margin contribution; with
	// good sources available they should be left on the shelf.
	cands := candidates(
		[]float64{0.9, 0.2, 0.85},
		[]float64{1, 1, 1},
		[]float64{1, 1, 1},
	)
	sel, err := Select(cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sel.Sources {
		if s == 1 {
			t.Error("the 0.2-accuracy source should not be bought")
		}
	}
}

func TestEndToEndWithSLiMFastEstimates(t *testing.T) {
	// Estimate accuracies with unsupervised EM, select half the budget,
	// and verify fusing only the chosen sources stays close to fusing
	// everything.
	inst, err := synth.Generate(synth.Config{
		Name: "sel", Sources: 40, Objects: 400, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.3,
		MeanAccuracy: 0.68, AccuracySD: 0.15, MinAccuracy: 0.4, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 301,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Compile(inst.Dataset, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitEM(nil); err != nil {
		t.Fatal(err)
	}
	cands := CandidatesFromEstimates(inst.Dataset, m.SourceAccuracies(), 1)
	sel, err := Select(cands, 20) // half the sources
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Sources) == 0 || len(sel.Sources) > 20 {
		t.Fatalf("selected %d sources", len(sel.Sources))
	}
	sub, _, err := data.RestrictSources(inst.Dataset, sel.Sources)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := core.Compile(sub, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m2.Fuse(core.AlgorithmEM, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Score only objects still observed.
	gold := data.TruthMap{}
	for o, v := range inst.Gold {
		if len(sub.Domain(o)) > 0 {
			gold[o] = v
		}
	}
	acc := metrics.ObjectAccuracy(res.Values, gold)
	if acc < 0.9 {
		t.Errorf("fusing the selected half = %.3f accuracy, want >= 0.9", acc)
	}
}
