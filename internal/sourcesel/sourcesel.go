// Package sourcesel implements source selection on top of SLiMFast's
// accuracy estimates: choosing which data sources to acquire under a
// budget. The paper's introduction motivates exactly this use of
// low-error accuracy estimates ("help users minimize the monetary cost
// of data acquisition by purchasing only accurate data sources",
// citing Dong, Saha & Srivastava's "Less is more" [12]).
//
// The selector greedily maximizes the expected fusion accuracy of the
// selected subset: at each step it adds the source whose inclusion
// most improves the expected probability that weighted voting recovers
// the truth, normalized by its cost, until the budget is exhausted.
// The gain estimate uses the Gaussian approximation of the weighted
// vote margin, which is cheap and monotone in the right things
// (coverage up, accuracy up, redundancy down).
package sourcesel

import (
	"errors"
	"math"
	"sort"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// Candidate describes one acquirable source.
type Candidate struct {
	Source data.SourceID
	// Accuracy is the (estimated) accuracy A_s, e.g. from
	// core.Model.SourceAccuracies or PredictAccuracy for unseen
	// sources.
	Accuracy float64
	// Coverage is the fraction of objects the source is expected to
	// report on (its selectivity).
	Coverage float64
	// Cost of acquiring the source; must be positive.
	Cost float64
}

// Selection is the chosen subset with its predicted quality.
type Selection struct {
	Sources []data.SourceID
	// SpentCost is the total cost of the chosen sources.
	SpentCost float64
	// ExpectedAccuracy is the model's estimate of fusion accuracy with
	// the chosen subset.
	ExpectedAccuracy float64
}

// expectedFusionAccuracy approximates the probability that weighted
// voting over the chosen sources recovers an object's true value, using
// a Gaussian approximation of the vote margin. Each selected source
// contributes weight σ_s = logit(A_s) when it reports (probability =
// its coverage): correct reports add +σ, wrong reports subtract σ in
// expectation over a binary-symmetric conflict.
func expectedFusionAccuracy(chosen []Candidate) float64 {
	if len(chosen) == 0 {
		// No sources = a coin flip over the binary-symmetric conflict,
		// not certainty of error. This is the baseline Select measures
		// gains against: using 0 here made any candidate — even one
		// definitely worse than random — look like an improvement.
		return 0.5
	}
	var mean, variance float64
	for _, c := range chosen {
		m, v := marginContribution(c)
		mean += m
		variance += v
	}
	return marginAccuracy(mean, variance)
}

// marginContribution returns candidate c's additive contribution to the
// mean and variance of the weighted vote margin.
func marginContribution(c Candidate) (mean, variance float64) {
	a := mathx.Clamp(c.Accuracy, 0.02, 0.98)
	w := math.Abs(mathx.Logit(a))
	// Margin contribution when the source reports: +w with prob a,
	// -w otherwise (its weight is spent on a wrong value).
	mean = c.Coverage * w * (2*a - 1)
	variance = c.Coverage * w * w * (1 - c.Coverage*(2*a-1)*(2*a-1))
	return mean, variance
}

// marginAccuracy maps an accumulated margin mean/variance to the
// expected fusion accuracy P(margin > 0).
func marginAccuracy(mean, variance float64) float64 {
	if variance <= 0 {
		if mean > 0 {
			return 1
		}
		return 0.5
	}
	// P(margin > 0) under the Gaussian approximation.
	z := mean / math.Sqrt(variance)
	return mathx.Clamp(normalCDF(z), 0, 1)
}

// normalCDF is Φ(z) via erf.
func normalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Select greedily picks sources maximizing expected fusion accuracy
// per unit cost, subject to the budget. Candidates with non-positive
// cost or out-of-range accuracy/coverage are rejected.
func Select(candidates []Candidate, budget float64) (*Selection, error) {
	if budget <= 0 {
		return nil, errors.New("sourcesel: budget must be positive")
	}
	for _, c := range candidates {
		if c.Cost <= 0 {
			return nil, errors.New("sourcesel: candidate cost must be positive")
		}
		if c.Accuracy < 0 || c.Accuracy > 1 {
			return nil, errors.New("sourcesel: accuracy out of [0,1]")
		}
		if c.Coverage < 0 || c.Coverage > 1 {
			return nil, errors.New("sourcesel: coverage out of [0,1]")
		}
	}
	remaining := append([]Candidate{}, candidates...)
	// Deterministic tie-breaking.
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].Source < remaining[j].Source })

	// The chosen set's margin statistics accumulate incrementally in
	// purchase order: evaluating a candidate is then O(1) — add its
	// contribution to the running mean/variance — instead of
	// rebuilding a slice and re-summing every chosen source per
	// candidate per round (the old append-based loop was O(|chosen|)
	// slice allocations and work for each of the O(n²) evaluations).
	// The additions happen in exactly the order the slice-based code
	// summed them, so the result is bit-identical (pinned by
	// TestSelectGoldenFingerprint).
	var chosenSources []data.SourceID
	var meanSum, varSum float64
	spent := 0.0
	// The empty selection already achieves coin-flip accuracy; a
	// candidate must beat 0.5, not 0, to be worth buying. With the old
	// zero baseline a single worse-than-random source (say accuracy
	// 0.3) showed a "gain" of +0.33 and was purchased, leaving the
	// buyer strictly worse off than guessing.
	current := 0.5
	for {
		bestIdx := -1
		bestRatio := 0.0
		bestAcc := current
		var bestMean, bestVar float64
		for i, c := range remaining {
			if spent+c.Cost > budget {
				continue
			}
			m, v := marginContribution(c)
			acc := marginAccuracy(meanSum+m, varSum+v)
			gain := acc - current
			ratio := gain / c.Cost
			if bestIdx == -1 || ratio > bestRatio+1e-15 {
				bestIdx = i
				bestRatio = ratio
				bestAcc = acc
				bestMean = meanSum + m
				bestVar = varSum + v
			}
		}
		if bestIdx == -1 || bestRatio <= 0 {
			break
		}
		c := remaining[bestIdx]
		chosenSources = append(chosenSources, c.Source)
		spent += c.Cost
		current = bestAcc
		meanSum, varSum = bestMean, bestVar
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	sel := &Selection{Sources: chosenSources, SpentCost: spent, ExpectedAccuracy: current}
	sort.Slice(sel.Sources, func(i, j int) bool { return sel.Sources[i] < sel.Sources[j] })
	return sel, nil
}

// CandidatesFromEstimates builds candidates from a dataset's estimated
// accuracies with observed coverage and uniform cost.
func CandidatesFromEstimates(ds *data.Dataset, accuracies []float64, cost float64) []Candidate {
	out := make([]Candidate, 0, ds.NumSources())
	nObj := float64(ds.NumObjects())
	for s := 0; s < ds.NumSources(); s++ {
		cov := 0.0
		if nObj > 0 {
			cov = float64(ds.SourceObservationCount(data.SourceID(s))) / nObj
		}
		out = append(out, Candidate{
			Source:   data.SourceID(s),
			Accuracy: accuracies[s],
			Coverage: mathx.Clamp(cov, 0, 1),
			Cost:     cost,
		})
	}
	return out
}
