package baselines

import (
	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// CATD is the confidence-aware truth-discovery method of Li et al.
// [22]. Sources with few observations get wide confidence intervals on
// their error rates; CATD weights each source by the upper confidence
// bound of its reliability,
//
//	w_s = χ²_{α/2, |O_s|} / Σ_{o ∈ O_s} d(v_os, v̂_o)
//
// where d is the 0/1 loss for categorical data, and re-estimates truths
// by weighted voting. Ground truth initializes the truth estimates (the
// adaptation the paper uses); remaining objects start from majority
// vote.
//
// CATD's weights are relative reliabilities, not probabilities, so
// HasProbabilisticAccuracies is false and the paper's Table 3 omits it.
type CATD struct {
	// Alpha is the confidence level of the chi-square interval (0.05
	// in Li et al.).
	Alpha     float64
	MaxIters  int
	Tolerance float64
}

// NewCATD returns CATD with the settings from Li et al.
func NewCATD() *CATD { return &CATD{Alpha: 0.05, MaxIters: 30, Tolerance: 1e-6} }

// Name implements Method.
func (*CATD) Name() string { return "CATD" }

// HasProbabilisticAccuracies implements Method.
func (*CATD) HasProbabilisticAccuracies() bool { return false }

// Fuse implements Method.
func (c *CATD) Fuse(ds *data.Dataset, train data.TruthMap) (*Output, error) {
	// Initialize truths: labels where available, else majority vote.
	mv, err := MajorityVote{}.Fuse(ds, train)
	if err != nil {
		return nil, err
	}
	values := mv.Values

	nS := ds.NumSources()
	weights := make([]float64, nS)
	prev := make([]float64, nS)
	for iter := 0; iter < c.MaxIters; iter++ {
		copy(prev, weights)
		// Weight update: chi-square upper bound over summed 0/1 loss.
		var wSum float64
		for s := 0; s < nS; s++ {
			idxs := ds.SourceObservationIndices(data.SourceID(s))
			if len(idxs) == 0 {
				weights[s] = 0
				continue
			}
			errSum := 0.05 // smoothing keeps perfect sources finite
			for _, i := range idxs {
				ob := ds.Observations[i]
				if v, ok := values[ob.Object]; ok && v != ob.Value {
					errSum++
				}
			}
			weights[s] = mathx.ChiSquareQuantile(c.Alpha/2, len(idxs)) / errSum
			wSum += weights[s]
		}
		if wSum > 0 {
			for s := range weights {
				weights[s] /= wSum
			}
		}
		// Truth update: weighted vote (labels stay pinned).
		for o := 0; o < ds.NumObjects(); o++ {
			oid := data.ObjectID(o)
			if _, ok := train[oid]; ok {
				continue
			}
			obs := ds.ObjectObservations(oid)
			if len(obs) == 0 {
				continue
			}
			scores := map[data.ValueID]float64{}
			for _, ob := range obs {
				scores[ob.Value] += weights[ob.Source]
			}
			values[oid] = argmaxFloat(scores)
		}
		if mathx.MaxAbsDiff(weights, prev) < c.Tolerance {
			break
		}
	}
	return &Output{
		Values:           values,
		SourceAccuracies: weights,
	}, nil
}
