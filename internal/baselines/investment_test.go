package baselines

import (
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
)

func TestInvestmentVariantsBeatChance(t *testing.T) {
	inst := benchInstance(t, 79)
	train, test := data.Split(inst.Gold, 0.1, randx.New(1))
	for _, m := range []Method{NewInvestment(), NewPooledInvestment()} {
		out, err := m.Fuse(inst.Dataset, train)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		acc := metrics.ObjectAccuracy(out.Values, test)
		if acc < 0.7 {
			t.Errorf("%s accuracy = %v, want >= 0.7", m.Name(), acc)
		}
	}
}

func TestInvestmentPinsLabels(t *testing.T) {
	inst := benchInstance(t, 80)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(2))
	for _, m := range []Method{NewInvestment(), NewPooledInvestment()} {
		out, err := m.Fuse(inst.Dataset, train)
		if err != nil {
			t.Fatal(err)
		}
		for o, v := range train {
			if out.Values[o] != v {
				t.Errorf("%s: label not pinned on object %d", m.Name(), o)
				break
			}
		}
	}
}

func TestInvestmentTrustFavorsAccurate(t *testing.T) {
	inst := benchInstance(t, 81)
	out, err := NewInvestment().Fuse(inst.Dataset, nil)
	if err != nil {
		t.Fatal(err)
	}
	var hi, lo, hiN, loN float64
	for s, a := range inst.TrueAccuracy {
		if inst.Dataset.SourceObservationCount(data.SourceID(s)) == 0 {
			continue
		}
		if a > 0.8 {
			hi += out.SourceAccuracies[s]
			hiN++
		} else if a < 0.6 {
			lo += out.SourceAccuracies[s]
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("no accuracy spread")
	}
	if hi/hiN <= lo/loN {
		t.Errorf("trust should track accuracy: hi=%v lo=%v", hi/hiN, lo/loN)
	}
}

func TestInvestmentMetadata(t *testing.T) {
	if NewInvestment().Name() != "Investment" || NewPooledInvestment().Name() != "PooledInvestment" {
		t.Error("names wrong")
	}
	if NewInvestment().HasProbabilisticAccuracies() {
		t.Error("investment trust is not an accuracy")
	}
}

func TestInvestmentHandlesEmptyObjects(t *testing.T) {
	b := data.NewBuilder("e")
	b.Object("lonely")
	b.ObserveNames("s1", "seen", "x")
	b.ObserveNames("s2", "seen", "y")
	d := b.Freeze()
	for _, m := range []Method{NewInvestment(), NewPooledInvestment()} {
		out, err := m.Fuse(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := out.Values[0]; ok {
			t.Errorf("%s estimated an unobserved object", m.Name())
		}
	}
}

func TestInvestmentPosteriorsNormalized(t *testing.T) {
	inst := benchInstance(t, 82)
	out, err := NewPooledInvestment().Fuse(inst.Dataset, nil)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, post := range out.Posteriors {
		var sum float64
		for _, p := range post {
			if p < 0 {
				t.Fatal("negative posterior")
			}
			sum += p
		}
		if sum > 1.0001 || sum < 0.999 {
			t.Fatalf("posterior sums to %v", sum)
		}
		checked++
		if checked > 50 {
			break
		}
	}
}
