package baselines

import (
	"errors"
	"math"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// Counts is the paper's supervised Naive Bayes baseline: source
// accuracies are the empirical fraction of correct observations on the
// ground truth (Laplace smoothed), and truth inference multiplies
// per-source likelihoods under conditional independence.
type Counts struct {
	// DefaultAccuracy is used for sources with no labeled
	// observations. The paper initializes unseen sources optimistically;
	// 0.7 matches its ACCU convention.
	DefaultAccuracy float64
}

// NewCounts returns Counts with the conventional default accuracy.
func NewCounts() *Counts { return &Counts{DefaultAccuracy: 0.7} }

// Name implements Method.
func (*Counts) Name() string { return "Counts" }

// HasProbabilisticAccuracies implements Method.
func (*Counts) HasProbabilisticAccuracies() bool { return true }

// Fuse implements Method.
func (c *Counts) Fuse(ds *data.Dataset, train data.TruthMap) (*Output, error) {
	if len(train) == 0 {
		return nil, errors.New("baselines: Counts requires ground truth")
	}
	def := c.DefaultAccuracy
	if def <= 0 || def >= 1 {
		def = 0.7
	}
	// Empirical accuracies with Laplace smoothing.
	acc := make([]float64, ds.NumSources())
	for s := 0; s < ds.NumSources(); s++ {
		correct, tot := 0.0, 0.0
		for _, i := range ds.SourceObservationIndices(data.SourceID(s)) {
			ob := ds.Observations[i]
			truth, ok := train[ob.Object]
			if !ok {
				continue
			}
			tot++
			if ob.Value == truth {
				correct++
			}
		}
		if tot == 0 {
			acc[s] = def
			continue
		}
		acc[s] = mathx.Clamp((correct+1)/(tot+2), 0.05, 0.99)
	}

	out := &Output{
		Values:           make(map[data.ObjectID]data.ValueID, ds.NumObjects()),
		Posteriors:       make(map[data.ObjectID]map[data.ValueID]float64, ds.NumObjects()),
		SourceAccuracies: acc,
	}
	for o := 0; o < ds.NumObjects(); o++ {
		oid := data.ObjectID(o)
		obs := ds.ObjectObservations(oid)
		if len(obs) == 0 {
			continue
		}
		if v, ok := train[oid]; ok {
			out.Values[oid] = v
			out.Posteriors[oid] = map[data.ValueID]float64{v: 1}
			continue
		}
		dom := ds.Domain(oid)
		n := float64(len(dom) - 1)
		if n < 1 {
			n = 1
		}
		scores := make([]float64, len(dom))
		for i, d := range dom {
			for _, ob := range obs {
				a := acc[ob.Source]
				if ob.Value == d {
					scores[i] += math.Log(a)
				} else {
					scores[i] += math.Log((1 - a) / n)
				}
			}
		}
		probs := mathx.Softmax(scores, nil)
		post := make(map[data.ValueID]float64, len(dom))
		sm := map[data.ValueID]float64{}
		for i, d := range dom {
			post[d] = probs[i]
			sm[d] = probs[i]
		}
		out.Values[oid] = argmaxFloat(sm)
		out.Posteriors[oid] = post
	}
	return out, nil
}
