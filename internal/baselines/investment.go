package baselines

import (
	"math"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// Investment is the iterative method of Pasternack & Roth [29]:
// sources "invest" their trust equally across their claims, claims
// grow the invested capital by a super-linear function G(x) = x^g, and
// each source earns back trust in proportion to its share of each
// claim's investment:
//
//	claim c:   conf(c) = G( Σ_{s claims c} t_s / |O_s| )
//	source s:  t_s = Σ_{c ∈ claims(s)} conf(c) · (t_s/|O_s|) / Σ_{s'} t_{s'}/|O_{s'}|
//
// with trust normalized each round. PooledInvestment (Pooled=true)
// applies the growth function to relative shares within each object,
// which dampens runaway winners.
type Investment struct {
	// G is the growth exponent (1.2 for Investment, 1.4 for
	// PooledInvestment in [29]).
	G float64
	// Pooled selects PooledInvestment.
	Pooled    bool
	MaxIters  int
	Tolerance float64
}

// NewInvestment returns Investment with the settings from [29].
func NewInvestment() *Investment {
	return &Investment{G: 1.2, MaxIters: 30, Tolerance: 1e-6}
}

// NewPooledInvestment returns PooledInvestment with the settings
// from [29].
func NewPooledInvestment() *Investment {
	return &Investment{G: 1.4, Pooled: true, MaxIters: 30, Tolerance: 1e-6}
}

// Name implements Method.
func (iv *Investment) Name() string {
	if iv.Pooled {
		return "PooledInvestment"
	}
	return "Investment"
}

// HasProbabilisticAccuracies implements Method: investment trust is a
// normalized score, not an accuracy.
func (iv *Investment) HasProbabilisticAccuracies() bool { return false }

// Fuse implements Method.
func (iv *Investment) Fuse(ds *data.Dataset, train data.TruthMap) (*Output, error) {
	nS := ds.NumSources()
	trust := make([]float64, nS)
	for s := range trust {
		trust[s] = 1
	}
	// Precompute per-source claim counts.
	claimCount := make([]float64, nS)
	for s := 0; s < nS; s++ {
		claimCount[s] = float64(ds.SourceObservationCount(data.SourceID(s)))
	}
	conf := make([]map[data.ValueID]float64, ds.NumObjects())
	prev := make([]float64, nS)
	for iter := 0; iter < iv.MaxIters; iter++ {
		copy(prev, trust)
		// Claim confidences from invested trust.
		for o := 0; o < ds.NumObjects(); o++ {
			oid := data.ObjectID(o)
			obs := ds.ObjectObservations(oid)
			if len(obs) == 0 {
				continue
			}
			invested := map[data.ValueID]float64{}
			for _, ob := range obs {
				if claimCount[ob.Source] == 0 {
					continue
				}
				invested[ob.Value] += trust[ob.Source] / claimCount[ob.Source]
			}
			cm := make(map[data.ValueID]float64, len(invested))
			if truth, ok := train[oid]; ok {
				// Labeled objects: pin confidence on the label.
				for v := range invested {
					if v == truth {
						cm[v] = 1
					}
				}
				if _, present := invested[truth]; !present {
					cm[truth] = 1
				}
				conf[o] = cm
				continue
			}
			if iv.Pooled {
				var total float64
				for _, x := range invested {
					total += x
				}
				for v, x := range invested {
					if total > 0 {
						cm[v] = x * math.Pow(x/total, iv.G-1)
					}
				}
			} else {
				for v, x := range invested {
					cm[v] = math.Pow(x, iv.G)
				}
			}
			conf[o] = cm
		}
		// Trust update: each source earns back its share of its claims'
		// confidence.
		next := make([]float64, nS)
		for o := 0; o < ds.NumObjects(); o++ {
			oid := data.ObjectID(o)
			obs := ds.ObjectObservations(oid)
			if len(obs) == 0 || conf[o] == nil {
				continue
			}
			// Total investment per value on this object.
			invested := map[data.ValueID]float64{}
			for _, ob := range obs {
				if claimCount[ob.Source] == 0 {
					continue
				}
				invested[ob.Value] += prev[ob.Source] / claimCount[ob.Source]
			}
			for _, ob := range obs {
				if claimCount[ob.Source] == 0 || invested[ob.Value] == 0 {
					continue
				}
				share := (prev[ob.Source] / claimCount[ob.Source]) / invested[ob.Value]
				next[ob.Source] += conf[o][ob.Value] * share
			}
		}
		// Normalize trust to mean 1 to keep the fixed point bounded.
		var sum float64
		active := 0
		for s := range next {
			if claimCount[s] > 0 {
				sum += next[s]
				active++
			}
		}
		if sum == 0 || active == 0 {
			break
		}
		mean := sum / float64(active)
		for s := range next {
			if claimCount[s] > 0 {
				trust[s] = next[s] / mean
			}
		}
		if mathx.MaxAbsDiff(trust, prev) < iv.Tolerance {
			break
		}
	}

	out := &Output{
		Values:           make(map[data.ObjectID]data.ValueID, ds.NumObjects()),
		Posteriors:       make(map[data.ObjectID]map[data.ValueID]float64, ds.NumObjects()),
		SourceAccuracies: trust,
	}
	for o := 0; o < ds.NumObjects(); o++ {
		if conf[o] == nil || len(conf[o]) == 0 {
			continue
		}
		oid := data.ObjectID(o)
		out.Values[oid] = argmaxFloat(conf[o])
		// Normalize confidences into a posterior-like distribution.
		var total float64
		for _, c := range conf[o] {
			total += c
		}
		post := make(map[data.ValueID]float64, len(conf[o]))
		for v, c := range conf[o] {
			if total > 0 {
				post[v] = c / total
			}
		}
		out.Posteriors[oid] = post
	}
	return out, nil
}
