package baselines

import (
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// benchInstance is a moderately hard instance all baselines should do
// well on: heterogeneous but better-than-chance sources.
func benchInstance(t *testing.T, seed int64) *synth.Instance {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "bl", Sources: 50, Objects: 500, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.25,
		MeanAccuracy: 0.7, AccuracySD: 0.12, MinAccuracy: 0.45, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func allMethods() []Method {
	return []Method{
		MajorityVote{},
		NewCounts(),
		NewACCU(),
		NewCATD(),
		NewSSTF(),
		NewTruthFinder(),
	}
}

func TestMethodsBeatChanceOnEasyInstance(t *testing.T) {
	inst := benchInstance(t, 71)
	train, test := data.Split(inst.Gold, 0.2, randx.New(1))
	for _, m := range allMethods() {
		out, err := m.Fuse(inst.Dataset, train)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		acc := metrics.ObjectAccuracy(out.Values, test)
		// Chance on a 3-valued domain is ~0.33; all methods should be
		// far above it, and most should beat raw majority-adjacent
		// levels.
		if acc < 0.7 {
			t.Errorf("%s accuracy = %v, want >= 0.7", m.Name(), acc)
		}
	}
}

func TestMethodsPinLabeledObjects(t *testing.T) {
	inst := benchInstance(t, 72)
	train, _ := data.Split(inst.Gold, 0.3, randx.New(2))
	for _, m := range allMethods() {
		out, err := m.Fuse(inst.Dataset, train)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for o, v := range train {
			if out.Values[o] != v {
				t.Errorf("%s: labeled object %d returned %d, want %d", m.Name(), o, out.Values[o], v)
				break
			}
		}
	}
}

func TestMajorityVoteDeterministicTieBreak(t *testing.T) {
	b := data.NewBuilder("tie")
	b.ObserveNames("s1", "o", "b")
	b.ObserveNames("s2", "o", "a")
	d := b.Freeze()
	out, err := MajorityVote{}.Fuse(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tie: smallest ValueID wins. "b" was interned first (id 0).
	if out.Values[0] != 0 {
		t.Errorf("tie break should pick smallest id, got %d", out.Values[0])
	}
}

func TestMajorityVotePosteriors(t *testing.T) {
	b := data.NewBuilder("p")
	b.ObserveNames("s1", "o", "a")
	b.ObserveNames("s2", "o", "a")
	b.ObserveNames("s3", "o", "b")
	d := b.Freeze()
	out, err := MajorityVote{}.Fuse(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	post := out.Posteriors[0]
	if math.Abs(post[0]-2.0/3.0) > 1e-12 {
		t.Errorf("majority posterior = %v, want 2/3", post[0])
	}
}

func TestCountsRequiresTruth(t *testing.T) {
	inst := benchInstance(t, 73)
	if _, err := NewCounts().Fuse(inst.Dataset, nil); err == nil {
		t.Error("Counts without ground truth should error")
	}
}

func TestCountsAccuraciesTrackTruth(t *testing.T) {
	inst := benchInstance(t, 74)
	train, _ := data.Split(inst.Gold, 0.5, randx.New(3))
	out, err := NewCounts().Fuse(inst.Dataset, train)
	if err != nil {
		t.Fatal(err)
	}
	trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)
	srcErr := metrics.SourceAccuracyError(inst.Dataset, out.SourceAccuracies, trueAcc)
	if srcErr > 0.08 {
		t.Errorf("Counts source error with 50%% truth = %v, want <= 0.08", srcErr)
	}
}

func TestACCUUnsupervisedConverges(t *testing.T) {
	inst := benchInstance(t, 75)
	out, err := NewACCU().Fuse(inst.Dataset, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.ObjectAccuracy(out.Values, inst.Gold)
	if acc < 0.8 {
		t.Errorf("unsupervised ACCU accuracy = %v, want >= 0.8", acc)
	}
	for s, a := range out.SourceAccuracies {
		if a < 0.05 || a > 0.99 {
			t.Fatalf("ACCU accuracy %d out of clamp: %v", s, a)
		}
	}
}

func TestCATDWeightsFavorAccurateSources(t *testing.T) {
	inst := benchInstance(t, 76)
	out, err := NewCATD().Fuse(inst.Dataset, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compare mean weight of the top accuracy quartile vs bottom.
	trueAcc := inst.TrueAccuracy
	type sw struct{ acc, w float64 }
	var sws []sw
	for s := range trueAcc {
		if inst.Dataset.SourceObservationCount(data.SourceID(s)) > 0 {
			sws = append(sws, sw{trueAcc[s], out.SourceAccuracies[s]})
		}
	}
	var hi, lo, hiN, loN float64
	for _, x := range sws {
		if x.acc > 0.8 {
			hi += x.w
			hiN++
		}
		if x.acc < 0.6 {
			lo += x.w
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("instance lacks accuracy spread")
	}
	if hi/hiN <= lo/loN {
		t.Errorf("CATD should weight accurate sources higher: hi=%v lo=%v", hi/hiN, lo/loN)
	}
}

func TestCATDLongTailRobustness(t *testing.T) {
	// CATD's selling point: long-tail sources with few observations
	// should not dominate. Build an instance where a tiny source is
	// perfect on 1 object and a big source is 0.9 on many.
	b := data.NewBuilder("tail")
	// Big source: 20 objects, 18 correct.
	for i := 0; i < 20; i++ {
		name := objName(i)
		if i < 18 {
			b.ObserveNames("big", name, "t"+name)
		} else {
			b.ObserveNames("big", name, "wrong")
		}
		// A few peers so objects have conflicts.
		b.ObserveNames("peer1", name, "t"+name)
		b.ObserveNames("peer2", name, "wrong")
	}
	b.ObserveNames("tiny", "o0", "to0") // single correct observation
	d := b.Freeze()
	out, err := NewCATD().Fuse(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	big := out.SourceAccuracies[0]
	var tiny float64
	for s, n := range d.SourceNames {
		if n == "tiny" {
			tiny = out.SourceAccuracies[s]
		}
	}
	if tiny >= big {
		t.Errorf("chi-square interval should discount the 1-observation source: tiny=%v big=%v", tiny, big)
	}
}

func objName(i int) string {
	return "o" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestSSTFExploitsLabels(t *testing.T) {
	inst := benchInstance(t, 77)
	_, test := data.Split(inst.Gold, 0.3, randx.New(4))
	unsup, err := NewSSTF().Fuse(inst.Dataset, nil)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := data.Split(inst.Gold, 0.3, randx.New(4))
	sup, err := NewSSTF().Fuse(inst.Dataset, train)
	if err != nil {
		t.Fatal(err)
	}
	accUnsup := metrics.ObjectAccuracy(unsup.Values, test)
	accSup := metrics.ObjectAccuracy(sup.Values, test)
	if accSup+0.02 < accUnsup {
		t.Errorf("labels should not hurt SSTF: %v -> %v", accUnsup, accSup)
	}
}

func TestTruthFinderTrustTracksAccuracy(t *testing.T) {
	inst := benchInstance(t, 78)
	out, err := NewTruthFinder().Fuse(inst.Dataset, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Spearman-ish check: mean trust of top-quartile accuracy sources
	// should exceed bottom quartile.
	var hi, lo, hiN, loN float64
	for s, a := range inst.TrueAccuracy {
		if inst.Dataset.SourceObservationCount(data.SourceID(s)) == 0 {
			continue
		}
		tr := out.SourceAccuracies[s]
		if a > 0.8 {
			hi += tr
			hiN++
		} else if a < 0.6 {
			lo += tr
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("instance lacks accuracy spread")
	}
	if hi/hiN <= lo/loN {
		t.Errorf("TruthFinder trust should track accuracy: hi=%v lo=%v", hi/hiN, lo/loN)
	}
}

func TestMethodMetadata(t *testing.T) {
	probabilistic := map[string]bool{
		"Majority": true, "Counts": true, "ACCU": true,
		"CATD": false, "SSTF": false, "TruthFinder": true,
	}
	for _, m := range allMethods() {
		want, ok := probabilistic[m.Name()]
		if !ok {
			t.Fatalf("unexpected method name %q", m.Name())
		}
		if m.HasProbabilisticAccuracies() != want {
			t.Errorf("%s: HasProbabilisticAccuracies = %v, want %v", m.Name(), !want, want)
		}
	}
}

func TestMethodsHandleEmptyObjects(t *testing.T) {
	b := data.NewBuilder("empty")
	b.Object("lonely")
	b.ObserveNames("s1", "seen", "x")
	b.ObserveNames("s2", "seen", "y")
	d := b.Freeze()
	train := data.TruthMap{1: 0}
	for _, m := range allMethods() {
		out, err := m.Fuse(d, train)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if _, ok := out.Values[0]; ok {
			t.Errorf("%s: estimated a value for an unobserved object", m.Name())
		}
	}
}
