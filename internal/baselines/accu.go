package baselines

import (
	"math"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// ACCU is the Bayesian data-fusion method of Dong et al. [9] without
// source copying (the configuration the paper compares against). It
// alternates between computing value probabilities from vote counts
//
//	C(d) = Σ_{s: v_os = d} ln( n·A_s / (1−A_s) ),  n = |Do|−1
//
// and re-estimating each source's accuracy as the mean probability of
// the values it claimed. Any ground truth initializes the accuracy
// estimates and pins the labeled objects, as suggested in [9].
type ACCU struct {
	// InitAccuracy seeds unlabeled sources (the 0.8 of Dong et al.).
	InitAccuracy float64
	// MaxIters / Tolerance control the fixed-point iteration.
	MaxIters  int
	Tolerance float64
}

// NewACCU returns ACCU with the settings from Dong et al.
func NewACCU() *ACCU {
	return &ACCU{InitAccuracy: 0.8, MaxIters: 50, Tolerance: 1e-4}
}

// Name implements Method.
func (*ACCU) Name() string { return "ACCU" }

// HasProbabilisticAccuracies implements Method.
func (*ACCU) HasProbabilisticAccuracies() bool { return true }

// Fuse implements Method.
func (a *ACCU) Fuse(ds *data.Dataset, train data.TruthMap) (*Output, error) {
	nS := ds.NumSources()
	acc := make([]float64, nS)
	// Initialize from ground truth where possible.
	labeledCorrect := make([]float64, nS)
	labeledTotal := make([]float64, nS)
	for _, ob := range ds.Observations {
		truth, ok := train[ob.Object]
		if !ok {
			continue
		}
		labeledTotal[ob.Source]++
		if ob.Value == truth {
			labeledCorrect[ob.Source]++
		}
	}
	for s := 0; s < nS; s++ {
		if labeledTotal[s] > 0 {
			acc[s] = mathx.Clamp((labeledCorrect[s]+1)/(labeledTotal[s]+2), 0.05, 0.99)
		} else {
			acc[s] = a.InitAccuracy
		}
	}

	posts := make([]map[data.ValueID]float64, ds.NumObjects())
	eStep := func() {
		for o := 0; o < ds.NumObjects(); o++ {
			oid := data.ObjectID(o)
			obs := ds.ObjectObservations(oid)
			if len(obs) == 0 {
				posts[o] = nil
				continue
			}
			if v, ok := train[oid]; ok {
				posts[o] = map[data.ValueID]float64{v: 1}
				continue
			}
			dom := ds.Domain(oid)
			n := float64(len(dom) - 1)
			if n < 1 {
				n = 1
			}
			scores := make([]float64, len(dom))
			pos := make(map[data.ValueID]int, len(dom))
			for i, d := range dom {
				pos[d] = i
			}
			for _, ob := range obs {
				as := mathx.Clamp(acc[ob.Source], 0.01, 0.99)
				scores[pos[ob.Value]] += math.Log(n * as / (1 - as))
			}
			probs := mathx.Softmax(scores, nil)
			post := make(map[data.ValueID]float64, len(dom))
			for i, d := range dom {
				post[d] = probs[i]
			}
			posts[o] = post
		}
	}

	prev := make([]float64, nS)
	for iter := 0; iter < a.MaxIters; iter++ {
		eStep()
		copy(prev, acc)
		// M-step: A_s = mean posterior probability of the source's
		// claims (smoothed).
		for s := 0; s < nS; s++ {
			var sum, tot float64
			for _, i := range ds.SourceObservationIndices(data.SourceID(s)) {
				ob := ds.Observations[i]
				if posts[ob.Object] == nil {
					continue
				}
				sum += posts[ob.Object][ob.Value]
				tot++
			}
			if tot == 0 {
				continue
			}
			acc[s] = mathx.Clamp((sum+0.5)/(tot+1), 0.05, 0.99)
		}
		if mathx.MaxAbsDiff(acc, prev) < a.Tolerance {
			break
		}
	}
	eStep()

	out := &Output{
		Values:           make(map[data.ObjectID]data.ValueID, ds.NumObjects()),
		Posteriors:       make(map[data.ObjectID]map[data.ValueID]float64, ds.NumObjects()),
		SourceAccuracies: acc,
	}
	for o := 0; o < ds.NumObjects(); o++ {
		if posts[o] == nil {
			continue
		}
		oid := data.ObjectID(o)
		out.Values[oid] = argmaxFloat(posts[o])
		out.Posteriors[oid] = posts[o]
	}
	return out, nil
}
