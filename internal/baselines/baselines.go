// Package baselines implements the competing data-fusion methods from
// Section 5.1 of the SLiMFast paper:
//
//   - MajorityVote — the trivial strategy, used as a reference.
//   - Counts — Naive Bayes with source accuracies estimated from
//     ground truth as empirical fractions of correct observations.
//   - ACCU — the Bayesian method of Dong et al. [9] without source
//     copying.
//   - CATD — the confidence-aware iterative method of Li et al. [22],
//     which scales source reliability by chi-square confidence
//     intervals to handle long-tail sources.
//   - SSTF — the semi-supervised truth finder of Yin & Tan [40].
//   - TruthFinder — the iterative method of Yin et al. [39] (the base
//     of SSTF; included for completeness).
//
// Every method implements the Method interface so the experiment
// harness can run them uniformly. Methods that follow probabilistic
// semantics return per-source accuracy estimates; CATD and SSTF return
// trust scores that are not accuracies (the paper omits them from the
// source-accuracy comparison for this reason), reported via
// HasProbabilisticAccuracies.
package baselines

import (
	"sort"

	"slimfast/internal/data"
)

// Output is the common result shape for all fusion methods.
type Output struct {
	// Values holds the estimated true value per object (objects with
	// no observations are absent).
	Values map[data.ObjectID]data.ValueID
	// Posteriors holds per-object value probabilities where the
	// method defines them (nil entries allowed).
	Posteriors map[data.ObjectID]map[data.ValueID]float64
	// SourceAccuracies holds the per-source accuracy (or trust)
	// estimates; nil when the method does not produce them.
	SourceAccuracies []float64
}

// Method is a data-fusion algorithm: given the observations and
// (possibly empty) ground truth, produce value estimates.
type Method interface {
	// Name returns the method's display name as used in the paper's
	// tables.
	Name() string
	// HasProbabilisticAccuracies reports whether SourceAccuracies are
	// probability-scale accuracy estimates comparable to A*_s.
	HasProbabilisticAccuracies() bool
	// Fuse solves the instance.
	Fuse(ds *data.Dataset, train data.TruthMap) (*Output, error)
}

// MajorityVote picks each object's most frequent value; ties break
// toward the smallest ValueID for determinism. Labeled objects return
// their label.
type MajorityVote struct{}

// Name implements Method.
func (MajorityVote) Name() string { return "Majority" }

// HasProbabilisticAccuracies implements Method. Majority vote reports
// agreement-with-majority rates, which approximate accuracies.
func (MajorityVote) HasProbabilisticAccuracies() bool { return true }

// Fuse implements Method.
func (MajorityVote) Fuse(ds *data.Dataset, train data.TruthMap) (*Output, error) {
	out := &Output{
		Values:     make(map[data.ObjectID]data.ValueID, ds.NumObjects()),
		Posteriors: make(map[data.ObjectID]map[data.ValueID]float64, ds.NumObjects()),
	}
	for o := 0; o < ds.NumObjects(); o++ {
		oid := data.ObjectID(o)
		obs := ds.ObjectObservations(oid)
		if len(obs) == 0 {
			continue
		}
		if v, ok := train[oid]; ok {
			out.Values[oid] = v
			out.Posteriors[oid] = map[data.ValueID]float64{v: 1}
			continue
		}
		counts := map[data.ValueID]int{}
		for _, ob := range obs {
			counts[ob.Value]++
		}
		out.Values[oid] = argmaxCount(counts)
		post := make(map[data.ValueID]float64, len(counts))
		for v, c := range counts {
			post[v] = float64(c) / float64(len(obs))
		}
		out.Posteriors[oid] = post
	}
	// Source "accuracy": agreement with the fused values.
	out.SourceAccuracies = agreementAccuracies(ds, out.Values)
	return out, nil
}

// argmaxCount returns the key with the highest count, smallest id wins
// ties.
func argmaxCount(counts map[data.ValueID]int) data.ValueID {
	keys := make([]data.ValueID, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	best, bestC := keys[0], counts[keys[0]]
	for _, v := range keys[1:] {
		if counts[v] > bestC {
			best, bestC = v, counts[v]
		}
	}
	return best
}

// argmaxFloat returns the key with the highest score, smallest id wins
// ties.
func argmaxFloat(scores map[data.ValueID]float64) data.ValueID {
	keys := make([]data.ValueID, 0, len(scores))
	for v := range scores {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	best, bestS := keys[0], scores[keys[0]]
	for _, v := range keys[1:] {
		if scores[v] > bestS {
			best, bestS = v, scores[v]
		}
	}
	return best
}

// agreementAccuracies estimates each source's accuracy as its rate of
// agreement with the fused estimates (Laplace smoothed). Sources with
// no usable observations get 0.5.
func agreementAccuracies(ds *data.Dataset, values map[data.ObjectID]data.ValueID) []float64 {
	acc := make([]float64, ds.NumSources())
	for s := range acc {
		agree, tot := 0.0, 0.0
		for _, i := range ds.SourceObservationIndices(data.SourceID(s)) {
			ob := ds.Observations[i]
			v, ok := values[ob.Object]
			if !ok {
				continue
			}
			tot++
			if ob.Value == v {
				agree++
			}
		}
		acc[s] = (agree + 0.5) / (tot + 1)
	}
	return acc
}
