package baselines

import (
	"math"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// TruthFinder is the iterative method of Yin, Han & Yu [39]. Each
// source has a trustworthiness t_s; each claimed value a confidence.
// One iteration computes, for value d of object o,
//
//	σ(d) = Σ_{s claims d} −ln(1 − t_s)            (trust score)
//	conf(d) = 1 / (1 + e^{−γ·σ(d)})               (dampened sigmoid)
//
// and then re-estimates t_s as the mean confidence of the values the
// source claims. We omit the value-similarity propagation term (no
// similarity metric exists for opaque categorical values; the original
// paper uses it for near-duplicate strings).
type TruthFinder struct {
	// Gamma is the dampening factor of [39] (0.3).
	Gamma float64
	// InitTrust seeds all sources (0.9 in [39]).
	InitTrust float64
	MaxIters  int
	Tolerance float64
}

// NewTruthFinder returns TruthFinder with the settings from Yin et al.
func NewTruthFinder() *TruthFinder {
	return &TruthFinder{Gamma: 0.3, InitTrust: 0.9, MaxIters: 30, Tolerance: 1e-5}
}

// Name implements Method.
func (*TruthFinder) Name() string { return "TruthFinder" }

// HasProbabilisticAccuracies implements Method. TruthFinder's trust is
// the average confidence of a source's claims, which approximates its
// accuracy.
func (*TruthFinder) HasProbabilisticAccuracies() bool { return true }

// Fuse implements Method.
func (tf *TruthFinder) Fuse(ds *data.Dataset, train data.TruthMap) (*Output, error) {
	nS := ds.NumSources()
	trust := make([]float64, nS)
	for s := range trust {
		trust[s] = tf.InitTrust
	}
	// Pinned confidence for labeled objects.
	conf := make([]map[data.ValueID]float64, ds.NumObjects())
	prev := make([]float64, nS)
	for iter := 0; iter < tf.MaxIters; iter++ {
		copy(prev, trust)
		for o := 0; o < ds.NumObjects(); o++ {
			oid := data.ObjectID(o)
			obs := ds.ObjectObservations(oid)
			if len(obs) == 0 {
				continue
			}
			dom := ds.Domain(oid)
			cm := make(map[data.ValueID]float64, len(dom))
			if truth, ok := train[oid]; ok {
				for _, d := range dom {
					if d == truth {
						cm[d] = 1
					} else {
						cm[d] = 0
					}
				}
				conf[o] = cm
				continue
			}
			for _, d := range dom {
				var sigma float64
				for _, ob := range obs {
					if ob.Value != d {
						continue
					}
					t := mathx.Clamp(trust[ob.Source], 0.01, 0.99)
					sigma += -math.Log(1 - t)
				}
				cm[d] = 1 / (1 + math.Exp(-tf.Gamma*sigma))
			}
			conf[o] = cm
		}
		for s := 0; s < nS; s++ {
			var sum, tot float64
			for _, i := range ds.SourceObservationIndices(data.SourceID(s)) {
				ob := ds.Observations[i]
				if conf[ob.Object] == nil {
					continue
				}
				sum += conf[ob.Object][ob.Value]
				tot++
			}
			if tot > 0 {
				trust[s] = mathx.Clamp(sum/tot, 0.01, 0.99)
			}
		}
		if mathx.MaxAbsDiff(trust, prev) < tf.Tolerance {
			break
		}
	}
	out := &Output{
		Values:           make(map[data.ObjectID]data.ValueID, ds.NumObjects()),
		Posteriors:       make(map[data.ObjectID]map[data.ValueID]float64, ds.NumObjects()),
		SourceAccuracies: trust,
	}
	for o := 0; o < ds.NumObjects(); o++ {
		if conf[o] == nil {
			continue
		}
		oid := data.ObjectID(o)
		out.Values[oid] = argmaxFloat(conf[o])
		out.Posteriors[oid] = conf[o]
	}
	return out, nil
}
