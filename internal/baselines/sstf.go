package baselines

import (
	"math"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// SSTF is the semi-supervised truth finder of Yin & Tan [40]: it
// propagates truth scores from labeled objects through the bipartite
// source–claim graph. Labeled values are pinned at confidence 1 (their
// conflicting siblings at 0); source trust is the mean confidence of
// the source's claims; claim confidence is a dampened combination of
// the trusts of its supporting sources, blended with the previous
// round's value (the graph-regularization term of [40], approximated by
// exponential smoothing with weight Lambda).
type SSTF struct {
	// Lambda blends the propagated score with the previous score
	// (graph smoothing).
	Lambda float64
	// Gamma dampens the trust-score sigmoid, as in TruthFinder.
	Gamma     float64
	InitTrust float64
	MaxIters  int
	Tolerance float64
}

// NewSSTF returns SSTF with the defaults used in the reproduction.
func NewSSTF() *SSTF {
	return &SSTF{Lambda: 0.5, Gamma: 0.3, InitTrust: 0.5, MaxIters: 40, Tolerance: 1e-5}
}

// Name implements Method.
func (*SSTF) Name() string { return "SSTF" }

// HasProbabilisticAccuracies implements Method. SSTF's trust scores are
// propagation scores, not accuracy estimates (the paper excludes SSTF
// from the source-accuracy comparison).
func (*SSTF) HasProbabilisticAccuracies() bool { return false }

// Fuse implements Method.
func (sf *SSTF) Fuse(ds *data.Dataset, train data.TruthMap) (*Output, error) {
	nS := ds.NumSources()
	trust := make([]float64, nS)
	for s := range trust {
		trust[s] = sf.InitTrust
	}
	conf := make([]map[data.ValueID]float64, ds.NumObjects())
	// Initialize claim confidences uniformly; pin labels.
	for o := 0; o < ds.NumObjects(); o++ {
		oid := data.ObjectID(o)
		dom := ds.Domain(oid)
		if len(dom) == 0 {
			continue
		}
		cm := make(map[data.ValueID]float64, len(dom))
		if truth, ok := train[oid]; ok {
			for _, d := range dom {
				if d == truth {
					cm[d] = 1
				}
			}
		} else {
			for _, d := range dom {
				cm[d] = 1 / float64(len(dom))
			}
		}
		conf[o] = cm
	}

	prev := make([]float64, nS)
	for iter := 0; iter < sf.MaxIters; iter++ {
		copy(prev, trust)
		// Trust from claim confidences.
		for s := 0; s < nS; s++ {
			var sum, tot float64
			for _, i := range ds.SourceObservationIndices(data.SourceID(s)) {
				ob := ds.Observations[i]
				if conf[ob.Object] == nil {
					continue
				}
				sum += conf[ob.Object][ob.Value]
				tot++
			}
			if tot > 0 {
				trust[s] = mathx.Clamp(sum/tot, 0.01, 0.99)
			}
		}
		// Claim confidences from trust, smoothed; labels stay pinned.
		for o := 0; o < ds.NumObjects(); o++ {
			oid := data.ObjectID(o)
			if conf[o] == nil {
				continue
			}
			if _, ok := train[oid]; ok {
				continue
			}
			for d := range conf[o] {
				var sigma float64
				for _, ob := range ds.ObjectObservations(oid) {
					if ob.Value != d {
						continue
					}
					sigma += -math.Log(1 - mathx.Clamp(trust[ob.Source], 0.01, 0.99))
				}
				propagated := 1 / (1 + math.Exp(-sf.Gamma*sigma))
				conf[o][d] = sf.Lambda*conf[o][d] + (1-sf.Lambda)*propagated
			}
		}
		if mathx.MaxAbsDiff(trust, prev) < sf.Tolerance {
			break
		}
	}

	out := &Output{
		Values:           make(map[data.ObjectID]data.ValueID, ds.NumObjects()),
		Posteriors:       make(map[data.ObjectID]map[data.ValueID]float64, ds.NumObjects()),
		SourceAccuracies: trust,
	}
	for o := 0; o < ds.NumObjects(); o++ {
		if conf[o] == nil {
			continue
		}
		oid := data.ObjectID(o)
		out.Values[oid] = argmaxFloat(conf[o])
		out.Posteriors[oid] = conf[o]
	}
	return out, nil
}
