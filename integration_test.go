package slimfast

import (
	"bytes"
	"testing"

	"slimfast/internal/baselines"
	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/eval"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// TestIntegrationFullPipeline exercises the complete stack the way a
// user would: generate an instance, serialize it to JSON, read it back,
// fuse it with SLiMFast and every baseline, and check the paper's
// headline ordering (SLiMFast with features beats the feature-less
// variants and simple baselines) on an instance where features carry
// signal.
func TestIntegrationFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration in -short mode")
	}
	inst, err := synth.Generate(synth.Config{
		Name: "integration", Sources: 60, Objects: 700, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.12,
		MeanAccuracy: 0.55, AccuracySD: 0.2, MinAccuracy: 0.2, MaxAccuracy: 0.95,
		WrongBias: 0.6,
		Features: []synth.FeatureGroup{
			{Name: "grade", Cardinality: 6, Informative: true, WeightScale: 2.5},
			{Name: "junk", Cardinality: 6, Informative: false},
		},
		EnsureTruthObserved: true,
		Seed:                101,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Serialize and reload: the reloaded dataset must behave
	// identically.
	var buf bytes.Buffer
	if err := data.WriteJSON(&buf, inst.Dataset, inst.Gold); err != nil {
		t.Fatal(err)
	}
	ds, gold, err := data.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumObservations() != inst.Dataset.NumObservations() {
		t.Fatal("round trip lost observations")
	}

	train, test := data.Split(gold, 0.05, randx.New(5))

	scores := map[string]float64{}
	methods := []baselines.Method{
		eval.NewSLiMFast(),
		eval.NewSourcesERM(),
		baselines.MajorityVote{},
		baselines.NewACCU(),
		baselines.NewCATD(),
	}
	for _, m := range methods {
		out, err := m.Fuse(ds, train)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		scores[m.Name()] = metrics.ObjectAccuracy(out.Values, test)
	}
	t.Logf("accuracies: %v", scores)
	if scores["SLiMFast"] < scores["Majority"] {
		t.Errorf("SLiMFast (%.3f) should beat majority vote (%.3f)",
			scores["SLiMFast"], scores["Majority"])
	}
	if scores["SLiMFast"]+0.02 < scores["S-ERM"] {
		t.Errorf("features should not hurt: SLiMFast %.3f vs S-ERM %.3f",
			scores["SLiMFast"], scores["S-ERM"])
	}
	if scores["SLiMFast"] < 0.7 {
		t.Errorf("SLiMFast accuracy %.3f too low on a feature-rich instance", scores["SLiMFast"])
	}
}

// TestIntegrationOptimizerMatchesRealWinner replays the Table 4
// protocol on a synthetic instance where the winner flips with the
// training fraction, checking the optimizer tracks it.
func TestIntegrationOptimizerMatchesRealWinner(t *testing.T) {
	if testing.Short() {
		t.Skip("integration in -short mode")
	}
	inst, err := synth.Generate(synth.Config{
		Name: "flip", Sources: 150, Objects: 900, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.03,
		MeanAccuracy: 0.75, AccuracySD: 0.1, MinAccuracy: 0.55, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 103,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny truth: EM should be chosen (dense-enough accurate sources).
	tiny, _ := data.Split(inst.Gold, 0.002, randx.New(1))
	decTiny := core.Decide(inst.Dataset, tiny, core.DefaultOptimizerOptions())
	if decTiny.Algorithm != core.AlgorithmEM {
		t.Errorf("tiny truth should choose EM: %+v", decTiny)
	}
	// Full truth: ERM.
	full, _ := data.Split(inst.Gold, 1.0, randx.New(1))
	decFull := core.Decide(inst.Dataset, full, core.DefaultOptimizerOptions())
	if decFull.Algorithm != core.AlgorithmERM {
		t.Errorf("full truth should choose ERM: %+v", decFull)
	}
}

// TestIntegrationSourceErrorHeadline verifies the Table 3 headline on a
// controlled instance: SLiMFast's source-accuracy error stays below
// the supervised Counts baseline at small training fractions (where
// Counts has almost no labeled observations per source).
func TestIntegrationSourceErrorHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration in -short mode")
	}
	inst, err := synth.Generate(synth.Config{
		Name: "srcerr", Sources: 80, Objects: 800, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.08,
		MeanAccuracy: 0.7, AccuracySD: 0.12, MinAccuracy: 0.5, MaxAccuracy: 0.95,
		Features: []synth.FeatureGroup{
			{Name: "q", Cardinality: 8, Informative: true, WeightScale: 2.0},
		},
		EnsureTruthObserved: true, Seed: 104,
	})
	if err != nil {
		t.Fatal(err)
	}
	slim, err := eval.RunAveraged(eval.NewSLiMFast(), inst, 0.01, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := eval.RunAveraged(baselines.NewCounts(), inst, 0.01, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if slim.SourceError >= counts.SourceError {
		t.Errorf("SLiMFast source error %.4f should beat Counts %.4f at 1%% TD",
			slim.SourceError, counts.SourceError)
	}
}
